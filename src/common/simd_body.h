/**
 * @file
 * Templated vector kernel bodies, instantiated once per ISA.
 *
 * Each per-ISA translation unit (simd_sse.cc, simd_avx2.cc,
 * simd_neon.cc — compiled with that ISA's flags) defines a traits
 * struct V and calls detail::makeTable<V>() to stamp out the bodies
 * below. The traits contract:
 *
 *   using F32 / F64           vector register types
 *   kF32 / kF64               lane counts (kF32 == 2 * kF64)
 *   load/store/set1/zero      unaligned load, store, broadcast, zeros
 *   add/sub/mul/div/max       lane-wise arithmetic (max follows the
 *                             x86 rule: max(a,b) = a > b ? a : b,
 *                             returning b on NaN or equal — which is
 *                             exactly std::max(b, a))
 *   cmpGt64/cmpGe64           lane masks (all-ones / all-zero bits)
 *   blend64(m, a, b)          per-lane m ? a : b
 *   transpose32(r[kF32])      in-register square tile transpose
 *   transpose64(r[kF64])      same, for the double registers
 *   widenTile(rows, out)      load kF64 rows of 2*kF64 floats each,
 *                             emit 2*kF64 transposed double vectors
 *                             (out[j] = element j of every row) —
 *                             exact widening, shared wide loads
 *   gather32to64(rows, idx)   lane i = (double)rows[i][idx], built in
 *                             registers (no store-buffer round trip)
 *   dupEven64/dupOdd64        [a0,a0,a2,a2] / [a1,a1,a3,a3]
 *   swapPairs64               [a1,a0,a3,a2]
 *   addsub64(a, b)            even lanes a-b, odd lanes a+b
 *   cvt32to64(p)              load kF64 floats, widen to doubles
 *
 * Every body follows the accumulation-order contract documented in
 * simd.h: lanes are independent output elements; per lane the op
 * sequence is exactly the scalar reference's. Tails run the scalar
 * sequence, continuing from extracted lane partials where one exists.
 */

#ifndef SIRIUS_COMMON_SIMD_BODY_H
#define SIRIUS_COMMON_SIMD_BODY_H

#include "common/simd.h"

namespace sirius::simd::detail {

template <class V>
void
matmulF32(const float *a, size_t n, size_t k, const float *b, size_t m,
          float *out)
{
    constexpr size_t W = V::kF32;
    constexpr size_t IB = 4; // accumulator rows per tile (see matrix.cc)
    size_t i0 = 0;
    for (; i0 + IB <= n; i0 += IB) {
        size_t j0 = 0;
        for (; j0 + W <= m; j0 += W) {
            typename V::F32 acc[IB];
            for (size_t i = 0; i < IB; ++i)
                acc[i] = V::zero32();
            for (size_t kk = 0; kk < k; ++kk) {
                const auto b_row = V::load32(b + kk * m + j0);
                for (size_t i = 0; i < IB; ++i) {
                    const auto a_ik = V::set132(a[(i0 + i) * k + kk]);
                    acc[i] = V::add32(acc[i], V::mul32(a_ik, b_row));
                }
            }
            for (size_t i = 0; i < IB; ++i)
                V::store32(out + (i0 + i) * m + j0, acc[i]);
        }
        for (; j0 < m; ++j0) { // ragged column tail
            for (size_t i = 0; i < IB; ++i) {
                const float *a_row = a + (i0 + i) * k;
                float acc = 0.0f;
                for (size_t kk = 0; kk < k; ++kk)
                    acc += a_row[kk] * b[kk * m + j0];
                out[(i0 + i) * m + j0] = acc;
            }
        }
    }
    for (; i0 < n; ++i0) { // ragged row tail
        const float *a_row = a + i0 * k;
        float *out_row = out + i0 * m;
        size_t j0 = 0;
        for (; j0 + W <= m; j0 += W) {
            auto acc = V::zero32();
            for (size_t kk = 0; kk < k; ++kk) {
                const auto a_ik = V::set132(a_row[kk]);
                acc = V::add32(acc,
                               V::mul32(a_ik, V::load32(b + kk * m + j0)));
            }
            V::store32(out_row + j0, acc);
        }
        for (; j0 < m; ++j0) {
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += a_row[kk] * b[kk * m + j0];
            out_row[j0] = acc;
        }
    }
}

template <class V>
void
matvecF32(const float *m, size_t rows, size_t cols, const float *v,
          float *out)
{
    constexpr size_t W = V::kF32;
    size_t r0 = 0;
    // A lane owns one output row. Row data is contiguous but lanes want
    // column-major access, so load a WxW tile of W row slices,
    // transpose in registers, then broadcast-multiply by v[c]: each
    // lane's accumulation still walks c strictly ascending.
    for (; r0 + W <= rows; r0 += W) {
        auto acc = V::zero32();
        size_t c = 0;
        for (; c + W <= cols; c += W) {
            typename V::F32 tile[W];
            for (size_t i = 0; i < W; ++i)
                tile[i] = V::load32(m + (r0 + i) * cols + c);
            V::transpose32(tile);
            for (size_t d = 0; d < W; ++d)
                acc = V::add32(acc,
                               V::mul32(tile[d], V::set132(v[c + d])));
        }
        float lanes[W];
        V::store32(lanes, acc);
        for (; c < cols; ++c) { // ragged column tail, scalar continue
            for (size_t i = 0; i < W; ++i)
                lanes[i] += m[(r0 + i) * cols + c] * v[c];
        }
        for (size_t i = 0; i < W; ++i)
            out[r0 + i] = lanes[i];
    }
    for (; r0 < rows; ++r0) { // ragged row tail
        const float *row = m + r0 * cols;
        float acc = 0.0f;
        for (size_t c = 0; c < cols; ++c)
            acc += row[c] * v[c];
        out[r0] = acc;
    }
}

template <class V>
void
reluF32(float *data, size_t n)
{
    constexpr size_t W = V::kF32;
    const auto zero = V::zero32();
    size_t i = 0;
    for (; i + W <= n; i += W)
        V::store32(data + i, V::max32(V::load32(data + i), zero));
    for (; i < n; ++i)
        data[i] = data[i] > 0.0f ? data[i] : 0.0f;
}

template <class V>
void
addRowF32(float *acc, const float *x, size_t n)
{
    constexpr size_t W = V::kF32;
    size_t i = 0;
    for (; i + W <= n; i += W)
        V::store32(acc + i,
                   V::add32(V::load32(acc + i), V::load32(x + i)));
    for (; i < n; ++i)
        acc[i] += x[i];
}

template <class V>
void
addScalarF32(float *data, size_t n, float b)
{
    constexpr size_t W = V::kF32;
    const auto bv = V::set132(b);
    size_t i = 0;
    for (; i + W <= n; i += W)
        V::store32(data + i, V::add32(V::load32(data + i), bv));
    for (; i < n; ++i)
        data[i] += b;
}

/** One group of B register blocks (B * kF64 frames) of gmmLanesF64,
 *  starting at frame j. B > 1 keeps several independent accumulator
 *  chains in flight — the per-lane op order never changes, the
 *  serial-latency-bound subtract chain just stops being the only
 *  work the core has. */
template <class V, size_t B>
void
gmmLanesGroup(double *acc, const double *x, size_t batch,
              const float *mean, const float *inv_var, size_t dim,
              size_t j)
{
    constexpr size_t W = V::kF64;
    const auto half = V::set164(0.5);
    typename V::F64 av[B];
    for (size_t blk = 0; blk < B; ++blk)
        av[blk] = V::load64(acc + j + blk * W);
    for (size_t d = 0; d < dim; ++d) {
        const auto mv = V::set164(mean[d]);
        const auto iv = V::set164(inv_var[d]);
        const double *xrow = x + d * batch + j;
        for (size_t blk = 0; blk < B; ++blk) {
            const auto diff = V::sub64(V::load64(xrow + blk * W), mv);
            const auto term =
                V::mul64(V::mul64(V::mul64(half, diff), diff), iv);
            av[blk] = V::sub64(av[blk], term);
        }
    }
    for (size_t blk = 0; blk < B; ++blk)
        V::store64(acc + j + blk * W, av[blk]);
}

template <class V>
void
gmmLanesF64(double *acc, const double *x, size_t batch,
            const float *mean, const float *inv_var, size_t dim)
{
    constexpr size_t W = V::kF64;
    // Lanes are frames; per frame the d loop is the exact logDensity
    // chain (0.5 * diff * diff * invVar, left-associated). Blocking
    // over frames keeps each lane's accumulator in a register across
    // the whole chain, so acc memory is touched once per block rather
    // than once per dimension.
    size_t j = 0;
    for (; j + 8 * W <= batch; j += 8 * W)
        gmmLanesGroup<V, 8>(acc, x, batch, mean, inv_var, dim, j);
    for (; j + W <= batch; j += W)
        gmmLanesGroup<V, 1>(acc, x, batch, mean, inv_var, dim, j);
    for (; j < batch; ++j) { // frame tail, scalar chain
        double a = acc[j];
        for (size_t d = 0; d < dim; ++d) {
            const double diff = x[d * batch + j] - mean[d];
            a -= 0.5 * diff * diff * inv_var[d];
        }
        acc[j] = a;
    }
}

/** One group of B register blocks (B * kF64 components) of
 *  gmmMixtureF64, starting at component c0. Component parameter rows
 *  are contiguous in d, so widen W dims per component with cvt32to64
 *  and transpose in registers — both exact, so each lane still sees
 *  the scalar d-ascending chain — instead of gathering the W lanes
 *  one scalar load at a time. B > 1 interleaves independent
 *  accumulator chains and amortises the x[d] broadcasts. */
template <class V, size_t B>
void
gmmMixtureGroup(const float *x, const double *xw_full, size_t dim,
                const float *const *means, const float *const *inv_vars,
                const float *log_norms, size_t c0, double *out)
{
    constexpr size_t W = V::kF64;
    const auto half = V::set164(0.5);
    typename V::F64 acc[B];
    for (size_t blk = 0; blk < B; ++blk) {
        double lanes[W];
        for (size_t i = 0; i < W; ++i)
            lanes[i] =
                static_cast<double>(log_norms[c0 + blk * W + i]);
        acc[blk] = V::load64(lanes);
    }
    // The hot tile loop broadcasts the widened frame straight from
    // memory (a pure load) instead of convert-then-broadcast shuffles.
    // The driver widens the frame once per call when it fits its stack
    // buffer (xw_full != nullptr); otherwise widen per chunk here.
    constexpr size_t kXChunk = 128;
    double xw_local[kXChunk];
    size_t d = 0;
    while (d + W <= dim) {
        const size_t rem = ((dim - d) / W) * W;
        const double *xw;
        size_t dn;
        if (xw_full != nullptr) {
            xw = xw_full + d;
            dn = rem;
        } else {
            dn = rem < kXChunk ? rem : kXChunk;
            for (size_t i = 0; i < dn; ++i)
                xw_local[i] = static_cast<double>(x[d + i]);
            xw = xw_local;
        }
        // Stream the blocks one at a time so only one block's tiles
        // are live — the blocks carry no data dependence, so the core
        // overlaps their chains without the register pressure of
        // materialising all B tiles at once. Within a block the mean
        // tile is consumed into t[jd] = (0.5*diff)*diff before the
        // inv-var tile is built — the subtraction chain still applies
        // the identical terms in d order, but the two tiles are never
        // live together.
        for (size_t dc = 0; dc + W <= dn; dc += W) {
            for (size_t blk = 0; blk < B; ++blk) {
                typename V::F64 t[W];
                {
                    typename V::F64 mt[W];
                    for (size_t i = 0; i < W; ++i)
                        mt[i] = V::cvt32to64(means[c0 + blk * W + i] +
                                             d + dc);
                    V::transpose64(mt);
                    for (size_t jd = 0; jd < W; ++jd) {
                        const auto diff =
                            V::sub64(V::set164(xw[dc + jd]), mt[jd]);
                        t[jd] = V::mul64(V::mul64(half, diff), diff);
                    }
                }
                typename V::F64 it[W];
                for (size_t i = 0; i < W; ++i)
                    it[i] = V::cvt32to64(inv_vars[c0 + blk * W + i] +
                                         d + dc);
                V::transpose64(it);
                for (size_t jd = 0; jd < W; ++jd)
                    acc[blk] = V::sub64(acc[blk],
                                        V::mul64(t[jd], it[jd]));
            }
        }
        d += dn;
    }
    // Dim tail: in-register lane gathers (gather32to64) avoid the
    // store-forwarding stall of marshalling each lane through memory.
    for (size_t blk = 0; blk < B; ++blk) {
        const float *mrows[W], *irows[W];
        for (size_t i = 0; i < W; ++i) {
            mrows[i] = means[c0 + blk * W + i];
            irows[i] = inv_vars[c0 + blk * W + i];
        }
        for (size_t dd = d; dd < dim; ++dd) {
            const auto xd = V::set164(static_cast<double>(x[dd]));
            const auto diff =
                V::sub64(xd, V::gather32to64(mrows, dd));
            const auto term =
                V::mul64(V::mul64(V::mul64(half, diff), diff),
                         V::gather32to64(irows, dd));
            acc[blk] = V::sub64(acc[blk], term);
        }
    }
    for (size_t blk = 0; blk < B; ++blk)
        V::store64(out + c0 + blk * W, acc[blk]);
}

template <class V>
void
gmmMixtureF64(const float *x, size_t dim, const float *const *means,
              const float *const *inv_vars, const float *log_norms,
              size_t count, double *out)
{
    constexpr size_t W = V::kF64;
    // Widen the frame once for the whole call when it fits on the
    // stack; the groups then skip their per-chunk conversion loops.
    constexpr size_t kWideCap = 256;
    double xw[kWideCap];
    const double *xw_full = nullptr;
    if (dim <= kWideCap) {
        for (size_t i = 0; i < dim; ++i)
            xw[i] = static_cast<double>(x[i]);
        xw_full = xw;
    }
    // Lanes are mixture components of one frame.
    size_t c0 = 0;
    for (; c0 + 3 * W <= count; c0 += 3 * W)
        gmmMixtureGroup<V, 3>(x, xw_full, dim, means, inv_vars,
                              log_norms, c0, out);
    for (; c0 + W <= count; c0 += W)
        gmmMixtureGroup<V, 1>(x, xw_full, dim, means, inv_vars,
                              log_norms, c0, out);
    if (c0 < count) {
        if (count >= W) {
            // Component tail: each out[c] is a pure function of
            // component c's parameters, so re-running a full-width
            // block that overlaps already-computed components rewrites
            // them with bitwise-identical values. Cheaper than a
            // scalar per-component loop over all dims.
            gmmMixtureGroup<V, 1>(x, xw_full, dim, means, inv_vars,
                                  log_norms, count - W, out);
        } else {
            for (; c0 < count; ++c0) { // scalar chain
                double acc = static_cast<double>(log_norms[c0]);
                const float *mean = means[c0];
                const float *iv = inv_vars[c0];
                for (size_t d = 0; d < dim; ++d) {
                    const double diff =
                        static_cast<double>(x[d]) - mean[d];
                    acc -= 0.5 * diff * diff * iv[d];
                }
                out[c0] = acc;
            }
        }
    }
}

template <class V>
void
descDistF32(const float *q, const float *const *descs, size_t count,
            size_t dim, float *out)
{
    constexpr size_t W = V::kF32;
    size_t i0 = 0;
    // Lanes are candidate descriptors; the same transpose trick as
    // matvecF32 keeps each lane's d loop strictly ascending.
    for (; i0 + W <= count; i0 += W) {
        auto acc = V::zero32();
        size_t d = 0;
        for (; d + W <= dim; d += W) {
            typename V::F32 tile[W];
            for (size_t i = 0; i < W; ++i)
                tile[i] = V::load32(descs[i0 + i] + d);
            V::transpose32(tile);
            for (size_t j = 0; j < W; ++j) {
                const auto diff =
                    V::sub32(V::set132(q[d + j]), tile[j]);
                acc = V::add32(acc, V::mul32(diff, diff));
            }
        }
        float lanes[W];
        V::store32(lanes, acc);
        for (; d < dim; ++d) {
            for (size_t i = 0; i < W; ++i) {
                const float diff = q[d] - descs[i0 + i][d];
                lanes[i] += diff * diff;
            }
        }
        for (size_t i = 0; i < W; ++i)
            out[i0 + i] = lanes[i];
    }
    for (; i0 < count; ++i0) {
        const float *b = descs[i0];
        float acc = 0.0f;
        for (size_t d = 0; d < dim; ++d) {
            const float diff = q[d] - b[d];
            acc += diff * diff;
        }
        out[i0] = acc;
    }
}

template <class V>
void
descNormalizeF32(float *desc, size_t n, double norm)
{
    constexpr size_t W = V::kF64;
    const auto nv = V::set164(norm);
    size_t i = 0;
    for (; i + W <= n; i += W) {
        const auto wide = V::div64(V::cvt32to64(desc + i), nv);
        double lanes[W];
        V::store64(lanes, wide);
        for (size_t j = 0; j < W; ++j)
            desc[i + j] = static_cast<float>(lanes[j]);
    }
    for (; i < n; ++i)
        desc[i] =
            static_cast<float>(static_cast<double>(desc[i]) / norm);
}

template <class V>
void
hessianRowF64(const double *table, size_t stride, int r, int c0,
              int step, int count, int filter_size, int lobe,
              double inv, float *responses, uint8_t *laplacians)
{
    constexpr size_t W = V::kF64;
    const int b = (filter_size - 1) / 2;
    const int l = lobe;
    const auto zero = V::zero64();
    const auto one = V::set164(1.0);
    const auto invv = V::set164(inv);
    const auto three = V::set164(3.0);
    const auto c081 = V::set164(0.81);

    size_t s0 = 0;
    // kernelAt evaluates the Hessian for W sample lanes starting at
    // s0; `cell` maps (row, col_off) to a vector of one table entry
    // per lane. boxSum's ((d - b) - c) + a then max(0, .) keeps the
    // same association and max semantics as std::max(0.0, sum).
    const auto kernelAt = [&](size_t base, auto cell) {
        const auto box = [&](int row, int col_off, int rows, int cols) {
            const auto a = cell(row, col_off);
            const auto bb = cell(row, col_off + cols);
            const auto cc = cell(row + rows, col_off);
            const auto dd = cell(row + rows, col_off + cols);
            return V::max64(
                V::add64(V::sub64(V::sub64(dd, bb), cc), a), zero);
        };

        auto dxx = V::sub64(
            box(r - l + 1, -b, 2 * l - 1, filter_size),
            V::mul64(three, box(r - l + 1, -l / 2, 2 * l - 1, l)));
        auto dyy = V::sub64(
            box(r - b, -l + 1, filter_size, 2 * l - 1),
            V::mul64(three, box(r - l / 2, -l + 1, l, 2 * l - 1)));
        auto dxy = V::sub64(
            V::sub64(V::add64(box(r - l, 1, l, l), box(r + 1, -l, l, l)),
                     box(r - l, -l, l, l)),
            box(r + 1, 1, l, l));
        dxx = V::mul64(dxx, invv);
        dyy = V::mul64(dyy, invv);
        dxy = V::mul64(dxy, invv);

        const auto det = V::sub64(
            V::mul64(dxx, dyy), V::mul64(V::mul64(c081, dxy), dxy));
        const auto lap =
            V::blend64(V::cmpGe64(V::add64(dxx, dyy), zero), one, zero);

        double det_lanes[W], lap_lanes[W];
        V::store64(det_lanes, det);
        V::store64(lap_lanes, lap);
        for (size_t i = 0; i < W; ++i) {
            responses[base + i] = static_cast<float>(det_lanes[i]);
            laplacians[base + i] = lap_lanes[i] != 0.0 ? 1 : 0;
        }
    };
    if (step == 1) {
        // Unit-stride samples: the W lanes of a cell are contiguous
        // table entries, so one unaligned load replaces the gather.
        for (; s0 + W <= static_cast<size_t>(count); s0 += W)
            kernelAt(s0, [&](int row, int col_off) {
                return V::load64(
                    table + static_cast<size_t>(row) * stride +
                    static_cast<ptrdiff_t>(
                        c0 + static_cast<int>(s0) + col_off));
            });
    } else {
        // Strided gather of one table cell across the W sample lanes,
        // marshalled through a stack array (no gather instruction
        // dependence; bit-exact scalar loads).
        for (; s0 + W <= static_cast<size_t>(count); s0 += W)
            kernelAt(s0, [&](int row, int col_off) {
                double lanes[W];
                for (size_t i = 0; i < W; ++i) {
                    const int c =
                        c0 + static_cast<int>(s0 + i) * step + col_off;
                    lanes[i] =
                        table[static_cast<size_t>(row) * stride +
                              static_cast<size_t>(c)];
                }
                return V::load64(lanes);
            });
    }
    for (; s0 < static_cast<size_t>(count); ++s0) { // sample tail
        const int c = c0 + static_cast<int>(s0) * step;
        const auto at = [&](int row, int col) {
            return table[static_cast<size_t>(row) * stride +
                         static_cast<size_t>(col)];
        };
        const auto box = [&](int row, int col, int rows, int cols) {
            const double sum = at(row + rows, col + cols) -
                at(row, col + cols) - at(row + rows, col) + at(row, col);
            return 0.0 < sum ? sum : 0.0;
        };
        double dxx = box(r - l + 1, c - b, 2 * l - 1, filter_size) -
            3.0 * box(r - l + 1, c - l / 2, 2 * l - 1, l);
        double dyy = box(r - b, c - l + 1, filter_size, 2 * l - 1) -
            3.0 * box(r - l / 2, c - l + 1, l, 2 * l - 1);
        double dxy = box(r - l, c + 1, l, l) + box(r + 1, c - l, l, l) -
            box(r - l, c - l, l, l) - box(r + 1, c + 1, l, l);
        dxx *= inv;
        dyy *= inv;
        dxy *= inv;
        responses[s0] =
            static_cast<float>(dxx * dyy - 0.81 * dxy * dxy);
        laplacians[s0] = (dxx + dyy) >= 0.0 ? 1 : 0;
    }
}

template <class V>
void
addRowF64(double *acc, const double *w, size_t n)
{
    constexpr size_t W = V::kF64;
    size_t i = 0;
    for (; i + W <= n; i += W)
        V::store64(acc + i,
                   V::add64(V::load64(acc + i), V::load64(w + i)));
    for (; i < n; ++i)
        acc[i] += w[i];
}

template <class V>
void
axpyF64(double *acc, const double *x, double scale, size_t n)
{
    constexpr size_t W = V::kF64;
    const auto sv = V::set164(scale);
    size_t i = 0;
    for (; i + W <= n; i += W)
        V::store64(acc + i,
                   V::add64(V::load64(acc + i),
                            V::mul64(sv, V::load64(x + i))));
    for (; i < n; ++i)
        acc[i] += scale * x[i];
}

template <class V>
void
viterbiStepF64(const double *prev, const double *trans, size_t num_tags,
               double *best, int32_t *arg)
{
    constexpr size_t W = V::kF64;
    size_t t0 = 0;
    // Lanes are target tags; the p loop keeps the scalar strict ">"
    // so ties resolve to the first (lowest-p) maximum per lane.
    for (; t0 + W <= num_tags; t0 += W) {
        auto bestv = V::set164(-1e300);
        auto argv = V::zero64();
        for (size_t p = 0; p < num_tags; ++p) {
            const auto s =
                V::add64(V::set164(prev[p]),
                         V::load64(trans + p * num_tags + t0));
            const auto gt = V::cmpGt64(s, bestv);
            bestv = V::blend64(gt, s, bestv);
            argv = V::blend64(
                gt, V::set164(static_cast<double>(p)), argv);
        }
        V::store64(best + t0, bestv);
        double lanes[W];
        V::store64(lanes, argv);
        for (size_t i = 0; i < W; ++i)
            arg[t0 + i] = static_cast<int32_t>(lanes[i]);
    }
    for (; t0 < num_tags; ++t0) { // target-tag tail
        double b = -1e300;
        int32_t a = 0;
        for (size_t p = 0; p < num_tags; ++p) {
            const double s = prev[p] + trans[p * num_tags + t0];
            if (s > b) {
                b = s;
                a = static_cast<int32_t>(p);
            }
        }
        best[t0] = b;
        arg[t0] = a;
    }
}

template <class V>
void
fftPassF64(double *data, size_t n, size_t len, const double *twiddles)
{
    constexpr size_t W = V::kF64;
    constexpr size_t C = W / 2; // complex values per register
    const size_t half = len / 2;
    for (size_t i = 0; i < n; i += len) {
        double *lo = data + 2 * i;
        double *hi = data + 2 * (i + half);
        size_t k = 0;
        // Lanes are butterflies. v*w uses the naive complex product:
        // even = vr*wr - vi*wi, odd = vi*wr + vr*wi (addition is
        // commutative bit-for-bit, so this equals vr*wi + vi*wr).
        for (; k + C <= half; k += C) {
            const auto u = V::load64(lo + 2 * k);
            const auto v = V::load64(hi + 2 * k);
            const auto w = V::load64(twiddles + 2 * k);
            const auto vw = V::addsub64(
                V::mul64(v, V::dupEven64(w)),
                V::mul64(V::swapPairs64(v), V::dupOdd64(w)));
            V::store64(lo + 2 * k, V::add64(u, vw));
            V::store64(hi + 2 * k, V::sub64(u, vw));
        }
        for (; k < half; ++k) { // butterfly tail
            const double ur = lo[2 * k], ui = lo[2 * k + 1];
            const double vr = hi[2 * k], vi = hi[2 * k + 1];
            const double wr = twiddles[2 * k], wi = twiddles[2 * k + 1];
            const double pr = vr * wr - vi * wi;
            const double pi = vr * wi + vi * wr;
            lo[2 * k] = ur + pr;
            lo[2 * k + 1] = ui + pi;
            hi[2 * k] = ur - pr;
            hi[2 * k + 1] = ui - pi;
        }
    }
}

template <class V>
void
complexNormF64(const double *data, size_t count, double *out)
{
    constexpr size_t W = V::kF64;
    constexpr size_t C = W / 2;
    size_t i = 0;
    for (; i + C <= count; i += C) {
        const auto v = V::load64(data + 2 * i);
        const auto sq = V::mul64(v, v);
        // Even lanes now hold re*re + im*im in scalar order.
        const auto sums = V::add64(sq, V::swapPairs64(sq));
        double lanes[W];
        V::store64(lanes, sums);
        for (size_t c = 0; c < C; ++c)
            out[i + c] = lanes[2 * c];
    }
    for (; i < count; ++i)
        out[i] = data[2 * i] * data[2 * i] +
            data[2 * i + 1] * data[2 * i + 1];
}

template <class V>
KernelTable
makeTable(Isa isa, const char *name)
{
    KernelTable t;
    t.isa = isa;
    t.name = name;
    t.matmulF32 = &matmulF32<V>;
    t.matvecF32 = &matvecF32<V>;
    t.reluF32 = &reluF32<V>;
    t.addRowF32 = &addRowF32<V>;
    t.addScalarF32 = &addScalarF32<V>;
    t.gmmLanesF64 = &gmmLanesF64<V>;
    t.gmmMixtureF64 = &gmmMixtureF64<V>;
    t.descDistF32 = &descDistF32<V>;
    t.descNormalizeF32 = &descNormalizeF32<V>;
    t.hessianRowF64 = &hessianRowF64<V>;
    t.addRowF64 = &addRowF64<V>;
    t.axpyF64 = &axpyF64<V>;
    t.viterbiStepF64 = &viterbiStepF64<V>;
    t.fftPassF64 = &fftPassF64<V>;
    t.complexNormF64 = &complexNormF64<V>;
    return t;
}

} // namespace sirius::simd::detail

#endif // SIRIUS_COMMON_SIMD_BODY_H
