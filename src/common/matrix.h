/**
 * @file
 * Dense row-major float matrix with the small set of BLAS-like kernels the
 * speech (DNN/GMM) and NLP (CRF) components need.
 */

#ifndef SIRIUS_COMMON_MATRIX_H
#define SIRIUS_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace sirius {

class Rng;

/** Row-major dense matrix of float. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with i.i.d. N(mean, stddev) draws from @p rng. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /** Fill with a constant. */
    void fill(float value);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * out = a * b. Shapes must agree (a.cols == b.rows); out is resized.
 *
 * Dispatches to the register-blocked, runtime-SIMD kernel in
 * common/simd.h (scalar / SSE4.2 / AVX2 / NEON). Whatever the ISA,
 * every out(i,j) is the sum of a(i,kk)*b(kk,j) accumulated over kk
 * STRICTLY ASCENDING — the accumulation-order contract documented in
 * common/simd.h — so batched DNN forwards stay bitwise-identical to
 * matvec-per-frame and results never depend on the host's vector
 * width.
 */
void matmul(const Matrix &a, const Matrix &b, Matrix &out);

/** out[r] = sum_c m(r,c) * v[c], c ascending (same contract as
 *  matmul); v.size() must equal m.cols(). SIMD-dispatched. */
void matvec(const Matrix &m, const std::vector<float> &v,
            std::vector<float> &out);

/** Element-wise y = max(0, y) (ReLU). */
void reluInPlace(std::vector<float> &v);

/** In-place softmax over @p v (numerically stabilized). */
void softmaxInPlace(std::vector<float> &v);

/** In-place numerically-stable log-softmax. */
void logSoftmaxInPlace(std::vector<float> &v);

/** Dot product; sizes must match. */
float dot(const std::vector<float> &a, const std::vector<float> &b);

/** log(sum_i exp(x_i)) computed stably. Returns -inf proxy when empty. */
double logSumExp(const std::vector<double> &xs);

/** Stable log(exp(a) + exp(b)). */
double logAdd(double a, double b);

} // namespace sirius

#endif // SIRIUS_COMMON_MATRIX_H
