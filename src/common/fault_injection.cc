#include "common/fault_injection.h"

#include "common/logging.h"

namespace sirius {

const char *
stageFaultName(StageFault fault)
{
    switch (fault) {
      case StageFault::None: return "none";
      case StageFault::Failure: return "failure";
      case StageFault::Latency: return "latency";
      case StageFault::Corruption: return "corruption";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed)
{
    if (config_.failureRate < 0.0 || config_.latencyRate < 0.0 ||
        config_.corruptionRate < 0.0) {
        fatal("FaultInjector: fault rates must be non-negative");
    }
    const double total = config_.failureRate + config_.latencyRate +
        config_.corruptionRate;
    if (total > 1.0)
        fatal("FaultInjector: fault rates sum above 1");
    configured_ = total > 0.0;
    armed_.store(configured_, std::memory_order_relaxed);
}

StageFault
FaultInjector::draw(const std::string &stage)
{
    if (!enabled())
        return StageFault::None;
    if ((stage == "asr" && !config_.faultAsr) ||
        (stage == "qa" && !config_.faultQa) ||
        (stage == "imm" && !config_.faultImm)) {
        return StageFault::None;
    }

    double u;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        u = rng_.uniform();
    }
    draws_.fetch_add(1, std::memory_order_relaxed);

    if (u < config_.failureRate) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        return StageFault::Failure;
    }
    u -= config_.failureRate;
    if (u < config_.latencyRate) {
        latencies_.fetch_add(1, std::memory_order_relaxed);
        return StageFault::Latency;
    }
    u -= config_.latencyRate;
    if (u < config_.corruptionRate) {
        corruptions_.fetch_add(1, std::memory_order_relaxed);
        return StageFault::Corruption;
    }
    return StageFault::None;
}

std::string
FaultInjector::corrupt(const std::string &text)
{
    if (text.empty())
        return text;
    std::string out = text;
    std::lock_guard<std::mutex> lock(mutex_);
    // Overwrite a seeded selection of characters; force at least one
    // change so corrupted output never equals the original.
    static const char kGarbage[] = "zqxjkvw";
    bool changed = false;
    for (auto &c : out) {
        if (rng_.chance(0.3)) {
            const char g = kGarbage[rng_.below(sizeof(kGarbage) - 1)];
            changed = changed || g != c;
            c = g;
        }
    }
    if (!changed) {
        const size_t i = rng_.below(out.size());
        out[i] = out[i] == 'z' ? 'q' : 'z';
    }
    return out;
}

} // namespace sirius
