#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace sirius {

namespace {

/** Render labels as `{k="v",k="v"}` (empty string for no labels). */
std::string
prometheusLabels(const MetricLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key;
        out += "=\"";
        // Prometheus exposition escaping: backslash, quote, and —
        // easy to forget, but required, or the value breaks the
        // line-oriented format — newline as the two characters \n.
        for (char c : value) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              default: out += c;
            }
        }
        out += '"';
    }
    out += '}';
    return out;
}

/** Render labels as `k=v;k=v` for the CSV exporter. */
std::string
csvLabels(const MetricLabels &labels)
{
    std::string out;
    for (const auto &[key, value] : labels) {
        if (!out.empty())
            out += ';';
        out += key;
        out += '=';
        out += value;
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Labels with `le=<edge>` appended, for histogram bucket series. */
std::string
bucketLabels(const MetricLabels &labels, const std::string &le)
{
    MetricLabels with = labels;
    with.emplace_back("le", le);
    return prometheusLabels(with);
}

} // namespace

bool
isValidMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    if (name.front() < 'a' || name.front() > 'z')
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry &other)
{
    merge(other);
}

MetricsRegistry &
MetricsRegistry::operator=(const MetricsRegistry &other)
{
    if (this == &other)
        return *this;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }
    merge(other);
    return *this;
}

std::string
MetricsRegistry::key(const std::string &name, const MetricLabels &labels)
{
    // Labels participate in the key in sorted order so the same label
    // set always resolves to the same instance regardless of the order
    // a call site lists it in.
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = name;
    for (const auto &[k, v] : sorted) {
        out += '\x1f';
        out += k;
        out += '\x1e';
        out += v;
    }
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name,
                       const MetricLabels &labels, Kind kind)
{
    if (!isValidMetricName(name))
        fatal("MetricsRegistry: metric name '" + name +
              "' is not snake_case");
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key(name, labels));
    Entry &e = it->second;
    if (inserted) {
        e.name = name;
        e.labels = labels;
        e.kind = kind;
        switch (kind) {
          case Kind::Counter:
            e.counter = std::make_unique<CounterMetric>();
            break;
          case Kind::Gauge:
            e.gauge = std::make_unique<GaugeMetric>();
            break;
          case Kind::Histogram:
            e.histogram = std::make_unique<LatencyHistogram>();
            break;
        }
    } else if (e.kind != kind) {
        fatal("MetricsRegistry: metric '" + name +
              "' re-registered with a different type");
    }
    return e;
}

CounterMetric &
MetricsRegistry::counter(const std::string &name,
                         const MetricLabels &labels)
{
    return *entry(name, labels, Kind::Counter).counter;
}

GaugeMetric &
MetricsRegistry::gauge(const std::string &name, const MetricLabels &labels)
{
    return *entry(name, labels, Kind::Gauge).gauge;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name,
                           const MetricLabels &labels)
{
    return *entry(name, labels, Kind::Histogram).histogram;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Snapshot the other registry's entries under its lock, then fold
    // into ours; folds use the public accessors so types are checked.
    struct Copied
    {
        std::string name;
        MetricLabels labels;
        Kind kind;
        uint64_t counterValue = 0;
        double gaugeValue = 0.0;
        LatencyHistogram histogramCopy;
    };
    std::vector<Copied> copies;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        copies.reserve(other.entries_.size());
        for (const auto &[k, e] : other.entries_) {
            Copied c;
            c.name = e.name;
            c.labels = e.labels;
            c.kind = e.kind;
            switch (e.kind) {
              case Kind::Counter: c.counterValue = e.counter->value(); break;
              case Kind::Gauge: c.gaugeValue = e.gauge->value(); break;
              case Kind::Histogram: c.histogramCopy = *e.histogram; break;
            }
            copies.push_back(std::move(c));
        }
    }
    for (const auto &c : copies) {
        switch (c.kind) {
          case Kind::Counter:
            counter(c.name, c.labels).add(c.counterValue);
            break;
          case Kind::Gauge: {
            GaugeMetric &g = gauge(c.name, c.labels);
            g.set(g.value() + c.gaugeValue);
            break;
          }
          case Kind::Histogram:
            histogram(c.name, c.labels).merge(c.histogramCopy);
            break;
        }
    }
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Group instances of the same metric name so the # TYPE header is
    // emitted once per family, as the exposition format requires.
    std::map<std::string, std::vector<const Entry *>> families;
    for (const auto &[k, e] : entries_)
        families[e.name].push_back(&e);

    std::string out;
    for (const auto &[name, members] : families) {
        const Kind kind = members.front()->kind;
        out += "# TYPE ";
        out += name;
        switch (kind) {
          case Kind::Counter: out += " counter\n"; break;
          case Kind::Gauge: out += " gauge\n"; break;
          case Kind::Histogram: out += " histogram\n"; break;
        }
        for (const Entry *e : members) {
            const std::string labels = prometheusLabels(e->labels);
            switch (kind) {
              case Kind::Counter:
                out += name + labels + ' ' +
                    std::to_string(e->counter->value()) + '\n';
                break;
              case Kind::Gauge:
                out += name + labels + ' ' +
                    formatDouble(e->gauge->value()) + '\n';
                break;
              case Kind::Histogram: {
                const LatencyHistogram &h = *e->histogram;
                size_t last = 0;
                for (size_t i = 0; i < h.buckets(); ++i) {
                    if (h.bucketCount(i) > 0)
                        last = i;
                }
                uint64_t cumulative = 0;
                for (size_t i = 0; i <= last && i < h.buckets(); ++i) {
                    cumulative += h.bucketCount(i);
                    // le = the bucket's exclusive upper edge (the next
                    // bucket's lower edge), matching quantile()'s
                    // conservative upper-edge estimates.
                    const double edge = i + 1 < h.buckets()
                        ? h.bucketLow(i + 1)
                        : h.bucketLow(i);
                    out += name + "_bucket" +
                        bucketLabels(e->labels, formatDouble(edge)) +
                        ' ' + std::to_string(cumulative) + '\n';
                }
                out += name + "_bucket" +
                    bucketLabels(e->labels, "+Inf") + ' ' +
                    std::to_string(h.count()) + '\n';
                out += name + "_sum" + prometheusLabels(e->labels) +
                    ' ' + formatDouble(h.sum()) + '\n';
                out += name + "_count" + prometheusLabels(e->labels) +
                    ' ' + std::to_string(h.count()) + '\n';
                break;
              }
            }
        }
    }
    return out;
}

std::string
MetricsRegistry::renderCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "metric,labels,stat,value\n";
    for (const auto &[k, e] : entries_) {
        const std::string labels = csvLabels(e.labels);
        const auto row = [&](const char *stat, const std::string &value) {
            out += e.name + ',' + labels + ',' + stat + ',' + value +
                '\n';
        };
        switch (e.kind) {
          case Kind::Counter:
            row("value", std::to_string(e.counter->value()));
            break;
          case Kind::Gauge:
            row("value", formatDouble(e.gauge->value()));
            break;
          case Kind::Histogram: {
            const LatencyHistogram &h = *e.histogram;
            row("count", std::to_string(h.count()));
            row("sum", formatDouble(h.sum()));
            row("mean", formatDouble(h.mean()));
            row("p50", formatDouble(h.p50()));
            row("p95", formatDouble(h.p95()));
            row("p99", formatDouble(h.p99()));
            break;
          }
        }
    }
    return out;
}

} // namespace sirius
