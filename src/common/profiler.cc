#include "common/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sirius {

void
Profiler::addSeconds(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    seconds_[name] += seconds;
}

std::map<std::string, double>
Profiler::snapshotTable() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seconds_;
}

double
Profiler::seconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = seconds_.find(name);
    return it == seconds_.end() ? 0.0 : it->second;
}

double
Profiler::totalSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : snapshotTable())
        total += secs;
    return total;
}

double
Profiler::fraction(const std::string &name) const
{
    const auto table = snapshotTable();
    double total = 0.0;
    for (const auto &[key, secs] : table)
        total += secs;
    if (total <= 0.0)
        return 0.0;
    auto it = table.find(name);
    return it == table.end() ? 0.0 : it->second / total;
}

void
Profiler::merge(const Profiler &other)
{
    const auto table = other.snapshotTable();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, secs] : table)
        seconds_[name] += secs;
}

void
Profiler::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    seconds_.clear();
}

std::vector<std::string>
Profiler::componentsByTime() const
{
    const auto table = snapshotTable();
    std::vector<std::string> names;
    names.reserve(table.size());
    for (const auto &[name, secs] : table)
        names.push_back(name);
    std::sort(names.begin(), names.end(),
              [&table](const std::string &a, const std::string &b) {
                  return table.at(a) > table.at(b);
              });
    return names;
}

std::string
Profiler::report() const
{
    const auto table = snapshotTable();
    std::vector<std::pair<std::string, double>> rows(table.begin(),
                                                     table.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    double total = 0.0;
    for (const auto &[name, secs] : rows)
        total += secs;
    std::ostringstream out;
    char line[160];
    for (const auto &[name, secs] : rows) {
        const double pct = total > 0 ? secs / total * 100.0 : 0.0;
        std::snprintf(line, sizeof(line), "%-28s %12.6f s %7.2f%%\n",
                      name.c_str(), secs, pct);
        out << line;
    }
    return out.str();
}

} // namespace sirius
