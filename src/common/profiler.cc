#include "common/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sirius {

void
Profiler::addSeconds(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Component &c = components_[name];
    c.seconds += seconds;
    if (c.calls == 0 || seconds < c.minSeconds)
        c.minSeconds = seconds;
    if (seconds > c.maxSeconds)
        c.maxSeconds = seconds;
    ++c.calls;
}

std::map<std::string, Profiler::Component>
Profiler::snapshotTable() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return components_;
}

double
Profiler::seconds(const std::string &name) const
{
    return component(name).seconds;
}

Profiler::Component
Profiler::component(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = components_.find(name);
    return it == components_.end() ? Component{} : it->second;
}

std::map<std::string, Profiler::Component>
Profiler::components() const
{
    return snapshotTable();
}

double
Profiler::totalSeconds() const
{
    double total = 0.0;
    for (const auto &[name, c] : snapshotTable())
        total += c.seconds;
    return total;
}

double
Profiler::fraction(const std::string &name) const
{
    const auto table = snapshotTable();
    double total = 0.0;
    for (const auto &[key, c] : table)
        total += c.seconds;
    if (total <= 0.0)
        return 0.0;
    auto it = table.find(name);
    return it == table.end() ? 0.0 : it->second.seconds / total;
}

void
Profiler::merge(const Profiler &other)
{
    const auto table = other.snapshotTable();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, theirs] : table) {
        Component &c = components_[name];
        if (theirs.calls == 0)
            continue;
        if (c.calls == 0 || theirs.minSeconds < c.minSeconds)
            c.minSeconds = theirs.minSeconds;
        c.maxSeconds = std::max(c.maxSeconds, theirs.maxSeconds);
        c.seconds += theirs.seconds;
        c.calls += theirs.calls;
    }
}

void
Profiler::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    components_.clear();
}

std::vector<std::string>
Profiler::componentsByTime() const
{
    const auto table = snapshotTable();
    std::vector<std::string> names;
    names.reserve(table.size());
    for (const auto &[name, c] : table)
        names.push_back(name);
    std::sort(names.begin(), names.end(),
              [&table](const std::string &a, const std::string &b) {
                  return table.at(a).seconds > table.at(b).seconds;
              });
    return names;
}

std::string
Profiler::report() const
{
    const auto table = snapshotTable();
    std::vector<std::pair<std::string, Component>> rows(table.begin(),
                                                        table.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.seconds > b.second.seconds;
              });
    double total = 0.0;
    for (const auto &[name, c] : rows)
        total += c.seconds;
    std::ostringstream out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%-28s %12s %8s %8s %10s %10s %10s\n", "component",
                  "seconds", "percent", "calls", "mean ms", "min ms",
                  "max ms");
    out << line;
    for (const auto &[name, c] : rows) {
        const double pct = total > 0 ? c.seconds / total * 100.0 : 0.0;
        std::snprintf(line, sizeof(line),
                      "%-28s %12.6f %7.2f%% %8llu %10.3f %10.3f "
                      "%10.3f\n",
                      name.c_str(), c.seconds, pct,
                      static_cast<unsigned long long>(c.calls),
                      c.meanSeconds() * 1e3, c.minSeconds * 1e3,
                      c.maxSeconds * 1e3);
        out << line;
    }
    return out.str();
}

void
Profiler::exportTo(MetricsRegistry &registry,
                   const MetricLabels &base) const
{
    for (const auto &[name, c] : snapshotTable()) {
        MetricLabels labels = base;
        labels.emplace_back("component", name);
        registry.gauge("sirius_component_seconds", labels)
            .set(c.seconds);
        registry.counter("sirius_component_calls_total", labels)
            .add(c.calls);
        registry.gauge("sirius_component_min_seconds", labels)
            .set(c.minSeconds);
        registry.gauge("sirius_component_max_seconds", labels)
            .set(c.maxSeconds);
    }
}

} // namespace sirius
