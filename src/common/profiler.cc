#include "common/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sirius {

void
Profiler::addSeconds(const std::string &name, double seconds)
{
    seconds_[name] += seconds;
}

double
Profiler::seconds(const std::string &name) const
{
    auto it = seconds_.find(name);
    return it == seconds_.end() ? 0.0 : it->second;
}

double
Profiler::totalSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : seconds_)
        total += secs;
    return total;
}

double
Profiler::fraction(const std::string &name) const
{
    const double total = totalSeconds();
    if (total <= 0.0)
        return 0.0;
    return seconds(name) / total;
}

std::vector<std::string>
Profiler::componentsByTime() const
{
    std::vector<std::string> names;
    names.reserve(seconds_.size());
    for (const auto &[name, secs] : seconds_)
        names.push_back(name);
    std::sort(names.begin(), names.end(),
              [this](const std::string &a, const std::string &b) {
                  return seconds(a) > seconds(b);
              });
    return names;
}

std::string
Profiler::report() const
{
    std::ostringstream out;
    const double total = totalSeconds();
    char line[160];
    for (const auto &name : componentsByTime()) {
        const double secs = seconds(name);
        const double pct = total > 0 ? secs / total * 100.0 : 0.0;
        std::snprintf(line, sizeof(line), "%-28s %12.6f s %7.2f%%\n",
                      name.c_str(), secs, pct);
        out << line;
    }
    return out.str();
}

} // namespace sirius
