/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All Sirius input-set generators (speech, images, corpus) must be exactly
 * reproducible across runs and platforms, so we ship our own small PRNG
 * (xoshiro256** seeded via splitmix64) rather than relying on
 * implementation-defined std::default_random_engine behaviour.
 */

#ifndef SIRIUS_COMMON_RNG_H
#define SIRIUS_COMMON_RNG_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sirius {

/**
 * Deterministic xoshiro256** generator.
 *
 * Satisfies UniformRandomBitGenerator so it can also be plugged into
 * <random> distributions where convenient, but the helper draws below are
 * preferred because their results are fully specified.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x51751285ULL) { reseed(seed); }

    /** Reset the stream to the state derived from @p seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small n used by the generators.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(operator()()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Standard normal draw via Box-Muller. */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        constexpr double two_pi = 6.283185307179586;
        spare_ = mag * std::sin(two_pi * u2);
        haveSpare_ = true;
        return mag * std::cos(two_pi * u2);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf(s)-distributed index sampler over [0, n).
 *
 * Rank r is drawn with probability proportional to 1/(r+1)^s, the
 * standard model for skewed assistant traffic (a few popular queries
 * dominate; s = 1.0 is classic Zipf, s = 0 degenerates to uniform).
 * The load generators use it to produce realistic key-repetition
 * patterns for the result caches: at Zipf(1.0) over 42 queries, the
 * top query alone is ~23% of traffic.
 *
 * Draws are inverse-CDF over a precomputed cumulative table, so a
 * sampler is immutable after construction and safe to share across
 * threads (each thread supplies its own Rng).
 */
class ZipfSampler
{
  public:
    /** Sampler over @p n items with exponent @p s (>= 0). */
    ZipfSampler(size_t n, double s)
    {
        cumulative_.reserve(n);
        double total = 0.0;
        for (size_t rank = 0; rank < n; ++rank) {
            total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
            cumulative_.push_back(total);
        }
    }

    /** Next index in [0, size()); popular (low) indices dominate. */
    size_t
    draw(Rng &rng) const
    {
        const double target =
            rng.uniform() * cumulative_.back();
        const auto it = std::lower_bound(cumulative_.begin(),
                                         cumulative_.end(), target);
        const size_t idx =
            static_cast<size_t>(it - cumulative_.begin());
        return idx < cumulative_.size() ? idx
                                        : cumulative_.size() - 1;
    }

    size_t size() const { return cumulative_.size(); }

  private:
    std::vector<double> cumulative_;
};

} // namespace sirius

#endif // SIRIUS_COMMON_RNG_H
