/**
 * @file
 * Radix-2 iterative FFT used by the MFCC front end of the ASR service.
 */

#ifndef SIRIUS_COMMON_FFT_H
#define SIRIUS_COMMON_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace sirius {

/**
 * In-place iterative Cooley-Tukey FFT.
 * @param data complex samples; size must be a power of two.
 * @param inverse compute the (unscaled) inverse transform when true.
 */
void fft(std::vector<std::complex<double>> &data, bool inverse = false);

/** True if @p n is a nonzero power of two. */
bool isPowerOfTwo(size_t n);

/** Smallest power of two >= @p n (n >= 1). */
size_t nextPowerOfTwo(size_t n);

/**
 * Magnitude spectrum of a real signal. The signal is zero-padded to the
 * next power of two; the first n/2+1 magnitudes are returned.
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &signal);

} // namespace sirius

#endif // SIRIUS_COMMON_FFT_H
