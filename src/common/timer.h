/**
 * @file
 * Wall-clock timing utilities used by benchmarks and the profiler.
 */

#ifndef SIRIUS_COMMON_TIMER_H
#define SIRIUS_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace sirius {

/** A restartable wall-clock stopwatch with nanosecond resolution. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the start point to now. */
    void restart() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

    /** Microseconds elapsed. */
    double microseconds() const { return seconds() * 1e6; }

    /** Nanoseconds elapsed. */
    uint64_t
    nanoseconds() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start_).count());
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * RAII timer that adds its lifetime (in seconds) to an accumulator on
 * destruction. Used to attribute wall time to pipeline components.
 */
class ScopedTimer
{
  public:
    /** @param sink accumulator that receives elapsed seconds. */
    explicit ScopedTimer(double &sink) : sink_(sink) {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { sink_ += watch_.seconds(); }

  private:
    double &sink_;
    Stopwatch watch_;
};

} // namespace sirius

#endif // SIRIUS_COMMON_TIMER_H
