#include "common/simd.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define SIRIUS_SIMD_X86 1
#endif

namespace sirius::simd {

// Vector tables live in per-ISA translation units compiled with the
// matching -m flags (see src/common/CMakeLists.txt); they are only
// entered after the runtime support probe below says the host can.
#if defined(SIRIUS_SIMD_X86)
const KernelTable &sseKernels();
const KernelTable &avx2Kernels();
#endif
#if defined(__aarch64__)
const KernelTable &neonKernels();
#endif

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the loops that used to live at
// the call sites, moved here verbatim — they ARE the bitwise ground
// truth every vector table is differential-tested against.
// ---------------------------------------------------------------------

constexpr size_t kMatmulRowsPerTile = 4;
constexpr size_t kMatmulColsPerTile = 8;

void
scalarMatmulF32(const float *a, size_t n, size_t k, const float *b,
                size_t m, float *out)
{
    constexpr size_t IB = kMatmulRowsPerTile, JB = kMatmulColsPerTile;
    size_t i0 = 0;
    for (; i0 + IB <= n; i0 += IB) {
        size_t j0 = 0;
        for (; j0 + JB <= m; j0 += JB) {
            float acc[IB][JB] = {};
            for (size_t kk = 0; kk < k; ++kk) {
                const float *b_row = b + kk * m + j0;
                for (size_t i = 0; i < IB; ++i) {
                    const float a_ik = a[(i0 + i) * k + kk];
                    for (size_t j = 0; j < JB; ++j)
                        acc[i][j] += a_ik * b_row[j];
                }
            }
            for (size_t i = 0; i < IB; ++i) {
                for (size_t j = 0; j < JB; ++j)
                    out[(i0 + i) * m + j0 + j] = acc[i][j];
            }
        }
        for (; j0 < m; ++j0) { // ragged column tail
            for (size_t i = 0; i < IB; ++i) {
                const float *a_row = a + (i0 + i) * k;
                float acc = 0.0f;
                for (size_t kk = 0; kk < k; ++kk)
                    acc += a_row[kk] * b[kk * m + j0];
                out[(i0 + i) * m + j0] = acc;
            }
        }
    }
    for (; i0 < n; ++i0) { // ragged row tail
        const float *a_row = a + i0 * k;
        float *out_row = out + i0 * m;
        size_t j0 = 0;
        for (; j0 + JB <= m; j0 += JB) {
            float acc[JB] = {};
            for (size_t kk = 0; kk < k; ++kk) {
                const float a_ik = a_row[kk];
                const float *b_row = b + kk * m + j0;
                for (size_t j = 0; j < JB; ++j)
                    acc[j] += a_ik * b_row[j];
            }
            for (size_t j = 0; j < JB; ++j)
                out_row[j0 + j] = acc[j];
        }
        for (; j0 < m; ++j0) {
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += a_row[kk] * b[kk * m + j0];
            out_row[j0] = acc;
        }
    }
}

void
scalarMatvecF32(const float *m, size_t rows, size_t cols, const float *v,
                float *out)
{
    for (size_t r = 0; r < rows; ++r) {
        const float *row = m + r * cols;
        float acc = 0.0f;
        for (size_t c = 0; c < cols; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
}

void
scalarReluF32(float *data, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        data[i] = std::max(0.0f, data[i]);
}

void
scalarAddRowF32(float *acc, const float *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += x[i];
}

void
scalarAddScalarF32(float *data, size_t n, float b)
{
    for (size_t i = 0; i < n; ++i)
        data[i] += b;
}

void
scalarGmmLanesF64(double *acc, const double *x, size_t batch,
                  const float *mean, const float *inv_var, size_t dim)
{
    for (size_t d = 0; d < dim; ++d) {
        const double mean_d = mean[d];
        const double inv_var_d = inv_var[d];
        const double *xrow = x + d * batch;
        for (size_t j = 0; j < batch; ++j) {
            const double diff = xrow[j] - mean_d;
            acc[j] -= 0.5 * diff * diff * inv_var_d;
        }
    }
}

void
scalarGmmMixtureF64(const float *x, size_t dim, const float *const *means,
                    const float *const *inv_vars, const float *log_norms,
                    size_t count, double *out)
{
    for (size_t c = 0; c < count; ++c) {
        double acc = static_cast<double>(log_norms[c]);
        const float *mean = means[c];
        const float *iv = inv_vars[c];
        for (size_t d = 0; d < dim; ++d) {
            const double diff = static_cast<double>(x[d]) - mean[d];
            acc -= 0.5 * diff * diff * iv[d];
        }
        out[c] = acc;
    }
}

void
scalarDescDistF32(const float *q, const float *const *descs, size_t count,
                  size_t dim, float *out)
{
    for (size_t i = 0; i < count; ++i) {
        const float *b = descs[i];
        float acc = 0.0f;
        for (size_t d = 0; d < dim; ++d) {
            const float diff = q[d] - b[d];
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

void
scalarDescNormalizeF32(float *desc, size_t n, double norm)
{
    for (size_t i = 0; i < n; ++i)
        desc[i] =
            static_cast<float>(static_cast<double>(desc[i]) / norm);
}

void
scalarHessianRowF64(const double *table, size_t stride, int r, int c0,
                    int step, int count, int filter_size, int lobe,
                    double inv, float *responses, uint8_t *laplacians)
{
    const int b = (filter_size - 1) / 2;
    const int l = lobe;
    const auto at = [&](int row, int col) {
        return table[static_cast<size_t>(row) * stride +
                     static_cast<size_t>(col)];
    };
    // In-range boxSum: same ((d - b) - c) + a association and the same
    // max(0, .) as IntegralImage::boxSum, minus the (never-taken for
    // interior samples) clamping.
    const auto box = [&](int row, int col, int rows, int cols) {
        const double sum = at(row + rows, col + cols) -
            at(row, col + cols) - at(row + rows, col) + at(row, col);
        return std::max(0.0, sum);
    };
    for (int s = 0; s < count; ++s) {
        const int c = c0 + s * step;
        double dxx = box(r - l + 1, c - b, 2 * l - 1, filter_size) -
            3.0 * box(r - l + 1, c - l / 2, 2 * l - 1, l);
        double dyy = box(r - b, c - l + 1, filter_size, 2 * l - 1) -
            3.0 * box(r - l / 2, c - l + 1, l, 2 * l - 1);
        double dxy = box(r - l, c + 1, l, l) + box(r + 1, c - l, l, l) -
            box(r - l, c - l, l, l) - box(r + 1, c + 1, l, l);
        dxx *= inv;
        dyy *= inv;
        dxy *= inv;
        const double det = dxx * dyy - 0.81 * dxy * dxy;
        responses[s] = static_cast<float>(det);
        laplacians[s] = (dxx + dyy) >= 0.0 ? 1 : 0;
    }
}

void
scalarAddRowF64(double *acc, const double *w, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += w[i];
}

void
scalarAxpyF64(double *acc, const double *x, double scale, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += scale * x[i];
}

void
scalarViterbiStepF64(const double *prev, const double *trans,
                     size_t num_tags, double *best, int32_t *arg)
{
    for (size_t t = 0; t < num_tags; ++t) {
        double b = -1e300;
        int32_t a = 0;
        for (size_t p = 0; p < num_tags; ++p) {
            const double s = prev[p] + trans[p * num_tags + t];
            if (s > b) {
                b = s;
                a = static_cast<int32_t>(p);
            }
        }
        best[t] = b;
        arg[t] = a;
    }
}

void
scalarFftPassF64(double *data, size_t n, size_t len,
                 const double *twiddles)
{
    // std::complex is layout-compatible with double[2] by [complex.numbers].
    auto *cdata = reinterpret_cast<std::complex<double> *>(data);
    const auto *w =
        reinterpret_cast<const std::complex<double> *>(twiddles);
    const size_t half = len / 2;
    for (size_t i = 0; i < n; i += len) {
        for (size_t k = 0; k < half; ++k) {
            const auto u = cdata[i + k];
            const auto v = cdata[i + k + half] * w[k];
            cdata[i + k] = u + v;
            cdata[i + k + half] = u - v;
        }
    }
}

void
scalarComplexNormF64(const double *data, size_t count, double *out)
{
    for (size_t i = 0; i < count; ++i) {
        out[i] = data[2 * i] * data[2 * i] +
            data[2 * i + 1] * data[2 * i + 1];
    }
}

const KernelTable kScalarTable = {
    Isa::Scalar,
    "scalar",
    &scalarMatmulF32,
    &scalarMatvecF32,
    &scalarReluF32,
    &scalarAddRowF32,
    &scalarAddScalarF32,
    &scalarGmmLanesF64,
    &scalarGmmMixtureF64,
    &scalarDescDistF32,
    &scalarDescNormalizeF32,
    &scalarHessianRowF64,
    &scalarAddRowF64,
    &scalarAxpyF64,
    &scalarViterbiStepF64,
    &scalarFftPassF64,
    &scalarComplexNormF64,
};

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

const KernelTable &
tableFor(Isa isa)
{
    switch (isa) {
#if defined(SIRIUS_SIMD_X86)
      case Isa::Sse: return sseKernels();
      case Isa::Avx2: return avx2Kernels();
#endif
#if defined(__aarch64__)
      case Isa::Neon: return neonKernels();
#endif
      default: return kScalarTable;
    }
}

std::string
joinIsaNames(const std::vector<Isa> &isas)
{
    std::string out;
    for (Isa isa : isas) {
        if (!out.empty())
            out += ',';
        out += isaName(isa);
    }
    return out;
}

/** Resolve SIRIUS_SIMD to an ISA; never fails (warns + native). */
Isa
resolveEnvironment(std::string &env_note)
{
    const Isa best = bestSupportedIsa();
    const char *env = std::getenv("SIRIUS_SIMD");
    if (env == nullptr || *env == '\0') {
        env_note = "unset";
        return best;
    }
    env_note = env;
    std::string lower;
    for (const char *p = env; *p != '\0'; ++p)
        lower += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*p)));
    if (lower == "native")
        return best;
    Isa want;
    if (!parseIsa(lower, want)) {
        logMessage(LogLevel::Warn,
                   "simd: unknown SIRIUS_SIMD value \"" + lower +
                       "\" (want scalar|sse|avx2|neon|native); using "
                       "native");
        return best;
    }
    if (!isaSupported(want)) {
        logMessage(LogLevel::Warn,
                   "simd: SIRIUS_SIMD=" + lower +
                       " not supported by this host; using native");
        return best;
    }
    return want;
}

std::once_flag g_init_once;

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar: return "scalar";
      case Isa::Sse: return "sse";
      case Isa::Avx2: return "avx2";
      case Isa::Neon: return "neon";
    }
    return "?";
}

bool
parseIsa(const std::string &name, Isa &out)
{
    if (name == "scalar") out = Isa::Scalar;
    else if (name == "sse" || name == "sse4.2") out = Isa::Sse;
    else if (name == "avx2") out = Isa::Avx2;
    else if (name == "neon") out = Isa::Neon;
    else return false;
    return true;
}

Isa
bestSupportedIsa()
{
#if defined(SIRIUS_SIMD_X86)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    if (__builtin_cpu_supports("sse4.2"))
        return Isa::Sse;
    return Isa::Scalar;
#elif defined(__aarch64__)
    return Isa::Neon;
#else
    return Isa::Scalar;
#endif
}

bool
isaSupported(Isa isa)
{
    if (isa == Isa::Scalar)
        return true;
#if defined(SIRIUS_SIMD_X86)
    __builtin_cpu_init();
    if (isa == Isa::Sse)
        return __builtin_cpu_supports("sse4.2") != 0;
    if (isa == Isa::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
    return false;
#elif defined(__aarch64__)
    return isa == Isa::Neon;
#else
    return false;
#endif
}

std::vector<Isa>
supportedIsas()
{
    std::vector<Isa> out{Isa::Scalar};
    for (Isa isa : {Isa::Sse, Isa::Avx2, Isa::Neon}) {
        if (isaSupported(isa))
            out.push_back(isa);
    }
    return out;
}

namespace detail {

std::atomic<const KernelTable *> g_table{nullptr};

const KernelTable &
initTable()
{
    std::call_once(g_init_once, [] {
        std::string env_note;
        const Isa isa = resolveEnvironment(env_note);
        const KernelTable *t = &tableFor(isa);
        // Don't clobber a setIsa() that raced ahead of first use.
        const KernelTable *expected = nullptr;
        g_table.compare_exchange_strong(expected, t,
                                        std::memory_order_release,
                                        std::memory_order_relaxed);
        logMessage(LogLevel::Info,
                   "simd: dispatch isa=" +
                       std::string(isaName(activeIsa())) +
                       " supported=" + joinIsaNames(supportedIsas()) +
                       " env=" + env_note);
    });
    return *g_table.load(std::memory_order_acquire);
}

} // namespace detail

const KernelTable &
scalarKernels()
{
    return kScalarTable;
}

Isa
activeIsa()
{
    return kernels().isa;
}

bool
setIsa(Isa isa)
{
    if (!isaSupported(isa))
        return false;
    detail::g_table.store(&tableFor(isa), std::memory_order_release);
    return true;
}

Isa
initFromEnvironment()
{
    std::string env_note;
    const Isa isa = resolveEnvironment(env_note);
    detail::g_table.store(&tableFor(isa), std::memory_order_release);
    return isa;
}

std::string
describeDispatch()
{
    std::string env_note = "unset";
    if (const char *env = std::getenv("SIRIUS_SIMD"))
        env_note = *env != '\0' ? env : "unset";
    return std::string("simd: dispatch isa=") + isaName(activeIsa()) +
        " supported=" + joinIsaNames(supportedIsas()) +
        " env=" + env_note;
}

void
exportMetrics(MetricsRegistry &registry, const MetricLabels &base)
{
    MetricLabels labels = base;
    labels.emplace_back("isa", isaName(activeIsa()));
    registry.gauge("sirius_simd_dispatch", labels).set(1.0);
    for (Isa isa : supportedIsas()) {
        MetricLabels sup = base;
        sup.emplace_back("isa", isaName(isa));
        registry.gauge("sirius_simd_supported", sup).set(1.0);
    }
}

} // namespace sirius::simd
