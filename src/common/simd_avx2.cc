// AVX2 kernel table. This translation unit is compiled with -mavx2
// (see src/common/CMakeLists.txt) and must only be entered after the
// runtime probe in simd.cc confirms host support.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/simd_body.h"

namespace sirius::simd {

namespace {

struct Avx2Traits
{
    using F32 = __m256;
    using F64 = __m256d;
    static constexpr size_t kF32 = 8;
    static constexpr size_t kF64 = 4;

    static F32 load32(const float *p) { return _mm256_loadu_ps(p); }
    static void store32(float *p, F32 v) { _mm256_storeu_ps(p, v); }
    static F32 set132(float v) { return _mm256_set1_ps(v); }
    static F32 zero32() { return _mm256_setzero_ps(); }
    static F32 add32(F32 a, F32 b) { return _mm256_add_ps(a, b); }
    static F32 sub32(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
    static F32 mul32(F32 a, F32 b) { return _mm256_mul_ps(a, b); }
    static F32 max32(F32 a, F32 b) { return _mm256_max_ps(a, b); }

    static void
    transpose32(F32 r[kF32])
    {
        const F32 t0 = _mm256_unpacklo_ps(r[0], r[1]);
        const F32 t1 = _mm256_unpackhi_ps(r[0], r[1]);
        const F32 t2 = _mm256_unpacklo_ps(r[2], r[3]);
        const F32 t3 = _mm256_unpackhi_ps(r[2], r[3]);
        const F32 t4 = _mm256_unpacklo_ps(r[4], r[5]);
        const F32 t5 = _mm256_unpackhi_ps(r[4], r[5]);
        const F32 t6 = _mm256_unpacklo_ps(r[6], r[7]);
        const F32 t7 = _mm256_unpackhi_ps(r[6], r[7]);
        const F32 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
        const F32 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
        const F32 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
        const F32 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
        r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
        r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
        r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
        r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
        r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
        r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
        r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
        r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
    }

    static F64 load64(const double *p) { return _mm256_loadu_pd(p); }
    static void store64(double *p, F64 v) { _mm256_storeu_pd(p, v); }
    static F64 set164(double v) { return _mm256_set1_pd(v); }
    static F64 zero64() { return _mm256_setzero_pd(); }
    static F64 add64(F64 a, F64 b) { return _mm256_add_pd(a, b); }
    static F64 sub64(F64 a, F64 b) { return _mm256_sub_pd(a, b); }
    static F64 mul64(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
    static F64 div64(F64 a, F64 b) { return _mm256_div_pd(a, b); }
    static F64 max64(F64 a, F64 b) { return _mm256_max_pd(a, b); }

    static F64
    cmpGt64(F64 a, F64 b)
    {
        return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    }

    static F64
    cmpGe64(F64 a, F64 b)
    {
        return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
    }

    static F64
    blend64(F64 mask, F64 a, F64 b)
    {
        return _mm256_blendv_pd(b, a, mask);
    }

    static void
    transpose64(F64 r[kF64])
    {
        const F64 t0 = _mm256_unpacklo_pd(r[0], r[1]); // a0 b0 a2 b2
        const F64 t1 = _mm256_unpackhi_pd(r[0], r[1]); // a1 b1 a3 b3
        const F64 t2 = _mm256_unpacklo_pd(r[2], r[3]); // c0 d0 c2 d2
        const F64 t3 = _mm256_unpackhi_pd(r[2], r[3]); // c1 d1 c3 d3
        r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
        r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
        r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
        r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
    }

    static F64 dupEven64(F64 v) { return _mm256_movedup_pd(v); }
    static F64 dupOdd64(F64 v) { return _mm256_permute_pd(v, 0xF); }
    static F64 swapPairs64(F64 v) { return _mm256_permute_pd(v, 0x5); }

    static F64
    addsub64(F64 a, F64 b)
    {
        return _mm256_addsub_pd(a, b);
    }

    static F64
    cvt32to64(const float *p)
    {
        return _mm256_cvtps_pd(_mm_loadu_ps(p));
    }

    static F64
    gather32to64(const float *const rows[kF64], size_t idx)
    {
        const __m128 lo = _mm_unpacklo_ps(_mm_load_ss(rows[0] + idx),
                                          _mm_load_ss(rows[1] + idx));
        const __m128 hi = _mm_unpacklo_ps(_mm_load_ss(rows[2] + idx),
                                          _mm_load_ss(rows[3] + idx));
        return _mm256_cvtps_pd(_mm_movelh_ps(lo, hi));
    }

    static void
    widenTile(const float *const rows[kF64], F64 out[2 * kF64])
    {
        const F32 r0 = _mm256_loadu_ps(rows[0]);
        const F32 r1 = _mm256_loadu_ps(rows[1]);
        const F32 r2 = _mm256_loadu_ps(rows[2]);
        const F32 r3 = _mm256_loadu_ps(rows[3]);
        const F32 t0 = _mm256_unpacklo_ps(r0, r1);
        const F32 t1 = _mm256_unpackhi_ps(r0, r1);
        const F32 t2 = _mm256_unpacklo_ps(r2, r3);
        const F32 t3 = _mm256_unpackhi_ps(r2, r3);
        // s_j lower lane = dim j across the 4 rows, upper = dim j+4.
        const F32 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
        const F32 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
        const F32 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
        out[0] = _mm256_cvtps_pd(_mm256_castps256_ps128(s0));
        out[1] = _mm256_cvtps_pd(_mm256_castps256_ps128(s1));
        out[2] = _mm256_cvtps_pd(_mm256_castps256_ps128(s2));
        out[3] = _mm256_cvtps_pd(_mm256_castps256_ps128(s3));
        out[4] = _mm256_cvtps_pd(_mm256_extractf128_ps(s0, 1));
        out[5] = _mm256_cvtps_pd(_mm256_extractf128_ps(s1, 1));
        out[6] = _mm256_cvtps_pd(_mm256_extractf128_ps(s2, 1));
        out[7] = _mm256_cvtps_pd(_mm256_extractf128_ps(s3, 1));
    }
};

} // namespace

const KernelTable &
avx2Kernels()
{
    static const KernelTable table =
        detail::makeTable<Avx2Traits>(Isa::Avx2, "avx2");
    return table;
}

} // namespace sirius::simd

#endif // x86
