#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/logging.h"

namespace sirius {

void
SampleStats::add(double value)
{
    samples_.push_back(value);
    sortedValid_ = false;
}

void
SampleStats::addAll(const std::vector<double> &values)
{
    samples_.insert(samples_.end(), values.begin(), values.end());
    sortedValid_ = false;
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleStats::stddev() const
{
    if (samples_.empty())
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
SampleStats::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
SampleStats::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 *
        static_cast<double>(sorted_.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram requires bins >= 1 and hi > lo");
}

void
Histogram::add(double value)
{
    const double span = hi_ - lo_;
    double pos = (value - lo_) / span * static_cast<double>(counts_.size());
    auto idx = static_cast<int64_t>(std::floor(pos));
    idx = std::clamp<int64_t>(idx, 0,
                              static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(size_t idx) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(idx);
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream out;
    const double bin_width = (hi_ - lo_) / static_cast<double>(bins());
    for (size_t i = 0; i < counts_.size(); ++i) {
        const size_t bar = static_cast<size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        out << "[" << binLow(i) << ", " << binLow(i) + bin_width << ") ";
        for (size_t j = 0; j < bar; ++j)
            out << '#';
        out << " " << counts_[i] << "\n";
    }
    return out.str();
}

LatencyHistogram::LatencyHistogram(double min_value, double growth,
                                   size_t buckets)
    : minValue_(min_value), growth_(growth),
      invLogGrowth_(1.0 / std::log(growth)), counts_(buckets), total_(0),
      sum_(0.0)
{
    if (min_value <= 0.0 || growth <= 1.0 || buckets < 2)
        fatal("LatencyHistogram requires min > 0, growth > 1, "
              "buckets >= 2");
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram &other)
    : minValue_(other.minValue_), growth_(other.growth_),
      invLogGrowth_(other.invLogGrowth_), counts_(other.counts_.size()),
      total_(other.total_.load(std::memory_order_relaxed)),
      sum_(other.sum_.load(std::memory_order_relaxed))
{
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

LatencyHistogram &
LatencyHistogram::operator=(const LatencyHistogram &other)
{
    if (this == &other)
        return *this;
    minValue_ = other.minValue_;
    growth_ = other.growth_;
    invLogGrowth_ = other.invLogGrowth_;
    std::vector<std::atomic<uint64_t>> fresh(other.counts_.size());
    for (size_t i = 0; i < fresh.size(); ++i)
        fresh[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    counts_ = std::move(fresh);
    total_.store(other.total_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
}

size_t
LatencyHistogram::bucketIndex(double value) const
{
    if (!(value > minValue_))
        return 0;
    const auto idx = static_cast<int64_t>(
        std::floor(std::log(value / minValue_) * invLogGrowth_));
    return static_cast<size_t>(std::clamp<int64_t>(
        idx, 0, static_cast<int64_t>(counts_.size()) - 1));
}

void
LatencyHistogram::add(double value)
{
    counts_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

bool
LatencyHistogram::sameLayout(const LatencyHistogram &other) const
{
    return minValue_ == other.minValue_ && growth_ == other.growth_ &&
        counts_.size() == other.counts_.size();
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (!sameLayout(other))
        fatal("LatencyHistogram::merge requires identical layouts");
    for (size_t i = 0; i < counts_.size(); ++i) {
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

uint64_t
LatencyHistogram::count() const
{
    return total_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

uint64_t
LatencyHistogram::bucketCount(size_t idx) const
{
    return counts_.at(idx).load(std::memory_order_relaxed);
}

double
LatencyHistogram::bucketLow(size_t idx) const
{
    return idx == 0 ? 0.0 : minValue_ * std::pow(growth_,
                                                 static_cast<double>(idx));
}

double
LatencyHistogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based; q=0 maps to the first sample.
    const auto rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    const uint64_t target = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i].load(std::memory_order_relaxed);
        if (seen >= target)
            return minValue_ * std::pow(growth_,
                                        static_cast<double>(i + 1));
    }
    return minValue_ * std::pow(growth_,
                                static_cast<double>(counts_.size()));
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return 0.0;
    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n, my = sy / n;
    double num = 0, dx = 0, dy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        num += (xs[i] - mx) * (ys[i] - my);
        dx += (xs[i] - mx) * (xs[i] - mx);
        dy += (ys[i] - my) * (ys[i] - my);
    }
    if (dx <= 0.0 || dy <= 0.0)
        return 0.0;
    return num / std::sqrt(dx * dy);
}

} // namespace sirius
