#include "common/fft.h"

#include <cmath>

#include "common/logging.h"
#include "common/simd.h"

namespace sirius {

bool
isPowerOfTwo(size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

size_t
nextPowerOfTwo(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<std::complex<double>> &data, bool inverse)
{
    const size_t n = data.size();
    if (!isPowerOfTwo(n))
        fatal("fft: size must be a power of two");

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Twiddle factors are built with the historical incremental
    // product (w *= wlen, NOT cos/sin per k) so the table holds the
    // exact bit patterns the old in-loop chain produced; the
    // SIMD-dispatched butterfly pass then vectorizes freely across k
    // because every butterfly just reads its precomputed w[k].
    constexpr double pi = 3.141592653589793238462643;
    std::vector<std::complex<double>> twiddles(n / 2);
    for (size_t len = 2; len <= n; len <<= 1) {
        const double ang = 2.0 * pi / static_cast<double>(len) *
            (inverse ? 1.0 : -1.0);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        std::complex<double> w(1.0, 0.0);
        for (size_t k = 0; k < len / 2; ++k) {
            twiddles[k] = w;
            w *= wlen;
        }
        simd::kernels().fftPassF64(
            reinterpret_cast<double *>(data.data()), n, len,
            reinterpret_cast<const double *>(twiddles.data()));
    }
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &signal)
{
    const size_t n = nextPowerOfTwo(std::max<size_t>(signal.size(), 2));
    std::vector<std::complex<double>> buf(n, {0.0, 0.0});
    for (size_t i = 0; i < signal.size(); ++i)
        buf[i] = {signal[i], 0.0};
    fft(buf);
    std::vector<double> mags(n / 2 + 1);
    for (size_t i = 0; i < mags.size(); ++i)
        mags[i] = std::abs(buf[i]);
    return mags;
}

} // namespace sirius
