#include "common/flight_recorder.h"

#include <algorithm>

namespace sirius {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now())
{
    config_.slowestCapacity = std::max<size_t>(config_.slowestCapacity, 1);
    config_.sampleEvery = std::max<size_t>(config_.sampleEvery, 1);
    windowStart_ = nowSeconds();
}

double
FlightRecorder::nowSeconds() const
{
    if (config_.clock != nullptr)
        return config_.clock->now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

size_t
FlightRecorder::spanBytes(const SpanRecord &span)
{
    size_t bytes = sizeof(SpanRecord) + span.name.size();
    for (const auto &[key, value] : span.attrs)
        bytes += key.size() + value.size() + 2 * sizeof(std::string);
    return bytes;
}

void
FlightRecorder::rollWindowLocked(double now)
{
    if (config_.windowSeconds <= 0.0 ||
        now - windowStart_ < config_.windowSeconds)
        return;
    kept_.clear();
    sampleOrder_.clear();
    bytes_ = 0;
    windowStart_ = now;
    ++stats_.windowRolls;
}

void
FlightRecorder::eraseLocked(uint64_t trace_id)
{
    auto it = kept_.find(trace_id);
    if (it == kept_.end())
        return;
    bytes_ -= std::min(bytes_, it->second.bytes);
    sampleOrder_.erase(std::remove(sampleOrder_.begin(),
                                   sampleOrder_.end(), trace_id),
                       sampleOrder_.end());
    kept_.erase(it);
}

void
FlightRecorder::enforceBudgetLocked(uint64_t keep)
{
    // Samples are the baseline, the slowest-N are the evidence: shed
    // the oldest samples first, then the least-slow of the slowest.
    while (bytes_ > config_.byteBudget) {
        uint64_t victim = 0;
        bool found = false;
        for (uint64_t id : sampleOrder_) {
            if (id != keep) {
                victim = id;
                found = true;
                break;
            }
        }
        if (!found) {
            double minDuration = 0.0;
            for (const auto &[id, trace] : kept_) {
                if (id == keep)
                    continue;
                if (!found || trace.durationSeconds < minDuration) {
                    victim = id;
                    minDuration = trace.durationSeconds;
                    found = true;
                }
            }
        }
        if (!found)
            break; // only the protected trace remains
        eraseLocked(victim);
        ++stats_.evicted;
    }
}

void
FlightRecorder::offer(uint64_t trace_id, double duration_seconds,
                      std::vector<SpanRecord> spans)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = nowSeconds();
    rollWindowLocked(now);
    ++stats_.offered;

    // Merge any staged legs of this trace into the candidate.
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->first == trace_id) {
            spans.insert(spans.end(),
                         std::make_move_iterator(it->second.begin()),
                         std::make_move_iterator(it->second.end()));
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }

    // Keep decision: slowest-N first (the tail is the point), uniform
    // sample otherwise.
    size_t slowestCount = 0;
    double minSlowest = 0.0;
    bool haveSlowest = false;
    for (const auto &[id, trace] : kept_) {
        if (trace.reason != "slowest")
            continue;
        ++slowestCount;
        if (!haveSlowest || trace.durationSeconds < minSlowest) {
            minSlowest = trace.durationSeconds;
            haveSlowest = true;
        }
    }
    std::string reason;
    if (slowestCount < config_.slowestCapacity ||
        (haveSlowest && duration_seconds > minSlowest))
        reason = "slowest";
    else if ((stats_.offered - 1) % config_.sampleEvery == 0 &&
             config_.sampleCapacity > 0)
        reason = "sample";
    if (reason.empty())
        return;

    RecordedTrace trace;
    trace.traceId = trace_id;
    trace.reason = reason;
    trace.endSeconds = now;
    trace.durationSeconds = duration_seconds;
    for (const SpanRecord &span : spans)
        trace.bytes += spanBytes(span);
    trace.spans = std::move(spans);
    if (trace.bytes > config_.byteBudget) {
        ++stats_.droppedBudget;
        return; // would never fit, even alone
    }

    eraseLocked(trace_id); // replace a previous keep of the same id
    bytes_ += trace.bytes;
    if (reason == "sample")
        sampleOrder_.push_back(trace_id);
    kept_[trace_id] = std::move(trace);
    ++stats_.kept;

    // Capacity: trim each reservoir, then the shared byte budget.
    size_t slowest = 0;
    for (const auto &[id, kept] : kept_)
        if (kept.reason == "slowest")
            ++slowest;
    while (slowest > config_.slowestCapacity) {
        uint64_t victim = 0;
        double minDuration = 0.0;
        bool found = false;
        for (const auto &[id, kept] : kept_) {
            if (kept.reason != "slowest")
                continue;
            if (!found || kept.durationSeconds < minDuration) {
                victim = id;
                minDuration = kept.durationSeconds;
                found = true;
            }
        }
        if (!found)
            break;
        eraseLocked(victim);
        ++stats_.evicted;
        --slowest;
    }
    while (sampleOrder_.size() > config_.sampleCapacity) {
        const uint64_t victim = sampleOrder_.front();
        eraseLocked(victim);
        ++stats_.evicted;
    }
    enforceBudgetLocked(trace_id);
}

void
FlightRecorder::offerPartial(uint64_t trace_id,
                             std::vector<SpanRecord> spans)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rollWindowLocked(nowSeconds());
    ++stats_.partials;
    auto it = kept_.find(trace_id);
    if (it != kept_.end()) {
        // A late leg (hedge loser) of a trace we kept: merge it in.
        RecordedTrace &trace = it->second;
        size_t added = 0;
        for (const SpanRecord &span : spans)
            added += spanBytes(span);
        trace.bytes += added;
        bytes_ += added;
        trace.spans.insert(trace.spans.end(),
                           std::make_move_iterator(spans.begin()),
                           std::make_move_iterator(spans.end()));
        ++stats_.merged;
        enforceBudgetLocked(trace_id);
        return;
    }
    if (pending_.size() >= config_.pendingCapacity)
        pending_.pop_front();
    pending_.emplace_back(trace_id, std::move(spans));
}

std::vector<RecordedTrace>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RecordedTrace> out;
    out.reserve(kept_.size());
    for (const auto &[id, trace] : kept_)
        out.push_back(trace);
    std::sort(out.begin(), out.end(),
              [](const RecordedTrace &a, const RecordedTrace &b) {
                  return a.durationSeconds > b.durationSeconds;
              });
    return out;
}

FlightRecorderStats
FlightRecorder::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FlightRecorderStats stats = stats_;
    stats.bytes = bytes_;
    stats.retained = kept_.size();
    stats.sampleCount = sampleOrder_.size();
    stats.slowestCount = kept_.size() - sampleOrder_.size();
    return stats;
}

bool
FlightRecorder::dumpJsonl(const std::string &path) const
{
    const std::vector<RecordedTrace> traces = snapshot();
    std::vector<SpanRecord> spans;
    for (const RecordedTrace &trace : traces)
        spans.insert(spans.end(), trace.spans.begin(),
                     trace.spans.end());
    return writeTraceJsonl(path, spans);
}

void
FlightRecorder::exportTo(MetricsRegistry &registry,
                         const MetricLabels &base) const
{
    const FlightRecorderStats stats = this->stats();
    const auto exportCounter = [&](const char *outcome, uint64_t value) {
        MetricLabels labels = base;
        labels.emplace_back("outcome", outcome);
        auto &counter =
            registry.counter("sirius_flight_traces_total", labels);
        counter.add(value - std::min(value, counter.value()));
    };
    exportCounter("offered", stats.offered);
    exportCounter("kept", stats.kept);
    exportCounter("merged", stats.merged);
    exportCounter("evicted", stats.evicted);
    exportCounter("dropped_budget", stats.droppedBudget);
    {
        MetricLabels labels = base;
        labels.emplace_back("recorder", "flight");
        registry.gauge("sirius_flight_bytes", labels)
            .set(static_cast<double>(stats.bytes));
    }
    {
        MetricLabels labels = base;
        labels.emplace_back("set", "slowest");
        registry.gauge("sirius_flight_retained", labels)
            .set(static_cast<double>(stats.slowestCount));
    }
    {
        MetricLabels labels = base;
        labels.emplace_back("set", "sample");
        registry.gauge("sirius_flight_retained", labels)
            .set(static_cast<double>(stats.sampleCount));
    }
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    kept_.clear();
    sampleOrder_.clear();
    pending_.clear();
    bytes_ = 0;
}

} // namespace sirius
