// SSE4.2 kernel table. This translation unit is compiled with
// -msse4.2 (see src/common/CMakeLists.txt) and must only be entered
// after the runtime probe in simd.cc confirms host support.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/simd_body.h"

namespace sirius::simd {

namespace {

struct SseTraits
{
    using F32 = __m128;
    using F64 = __m128d;
    static constexpr size_t kF32 = 4;
    static constexpr size_t kF64 = 2;

    static F32 load32(const float *p) { return _mm_loadu_ps(p); }
    static void store32(float *p, F32 v) { _mm_storeu_ps(p, v); }
    static F32 set132(float v) { return _mm_set1_ps(v); }
    static F32 zero32() { return _mm_setzero_ps(); }
    static F32 add32(F32 a, F32 b) { return _mm_add_ps(a, b); }
    static F32 sub32(F32 a, F32 b) { return _mm_sub_ps(a, b); }
    static F32 mul32(F32 a, F32 b) { return _mm_mul_ps(a, b); }
    static F32 max32(F32 a, F32 b) { return _mm_max_ps(a, b); }

    static void
    transpose32(F32 r[kF32])
    {
        _MM_TRANSPOSE4_PS(r[0], r[1], r[2], r[3]);
    }

    static F64 load64(const double *p) { return _mm_loadu_pd(p); }
    static void store64(double *p, F64 v) { _mm_storeu_pd(p, v); }
    static F64 set164(double v) { return _mm_set1_pd(v); }
    static F64 zero64() { return _mm_setzero_pd(); }
    static F64 add64(F64 a, F64 b) { return _mm_add_pd(a, b); }
    static F64 sub64(F64 a, F64 b) { return _mm_sub_pd(a, b); }
    static F64 mul64(F64 a, F64 b) { return _mm_mul_pd(a, b); }
    static F64 div64(F64 a, F64 b) { return _mm_div_pd(a, b); }
    static F64 max64(F64 a, F64 b) { return _mm_max_pd(a, b); }
    static F64 cmpGt64(F64 a, F64 b) { return _mm_cmpgt_pd(a, b); }
    static F64 cmpGe64(F64 a, F64 b) { return _mm_cmpge_pd(a, b); }

    static F64
    blend64(F64 mask, F64 a, F64 b)
    {
        return _mm_blendv_pd(b, a, mask);
    }

    static void
    transpose64(F64 r[kF64])
    {
        const F64 t0 = _mm_unpacklo_pd(r[0], r[1]);
        const F64 t1 = _mm_unpackhi_pd(r[0], r[1]);
        r[0] = t0;
        r[1] = t1;
    }

    static F64 dupEven64(F64 v) { return _mm_movedup_pd(v); }
    static F64 dupOdd64(F64 v) { return _mm_unpackhi_pd(v, v); }
    static F64 swapPairs64(F64 v) { return _mm_shuffle_pd(v, v, 0x1); }
    static F64 addsub64(F64 a, F64 b) { return _mm_addsub_pd(a, b); }

    static F64
    cvt32to64(const float *p)
    {
        return _mm_cvtps_pd(_mm_castsi128_ps(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p))));
    }

    static F64
    gather32to64(const float *const rows[kF64], size_t idx)
    {
        const __m128 v = _mm_unpacklo_ps(_mm_load_ss(rows[0] + idx),
                                         _mm_load_ss(rows[1] + idx));
        return _mm_cvtps_pd(v);
    }

    static void
    widenTile(const float *const rows[kF64], F64 out[2 * kF64])
    {
        const F32 r0 = _mm_loadu_ps(rows[0]);
        const F32 r1 = _mm_loadu_ps(rows[1]);
        const F32 t0 = _mm_unpacklo_ps(r0, r1); // d0 pair, d1 pair
        const F32 t1 = _mm_unpackhi_ps(r0, r1); // d2 pair, d3 pair
        out[0] = _mm_cvtps_pd(t0);
        out[1] = _mm_cvtps_pd(_mm_movehl_ps(t0, t0));
        out[2] = _mm_cvtps_pd(t1);
        out[3] = _mm_cvtps_pd(_mm_movehl_ps(t1, t1));
    }
};

} // namespace

const KernelTable &
sseKernels()
{
    static const KernelTable table =
        detail::makeTable<SseTraits>(Isa::Sse, "sse");
    return table;
}

} // namespace sirius::simd

#endif // x86
