/**
 * @file
 * Named accumulating profiler used for the cycle-breakdown experiments.
 *
 * The paper uses Intel VTune to attribute cycles to algorithmic components
 * (Figure 9). We substitute wall-time attribution: each component wraps its
 * hot region in Profiler::scope("name") and the bench prints the resulting
 * percentage breakdown.
 */

#ifndef SIRIUS_COMMON_PROFILER_H
#define SIRIUS_COMMON_PROFILER_H

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace sirius {

/**
 * Accumulates per-component wall time under string keys.
 *
 * Thread-safe: concurrent server workers attribute stage time into one
 * shared Profiler, so every accessor takes an internal mutex. Scopes time
 * their region without holding the lock and only lock to accumulate.
 */
class Profiler
{
  public:
    /** RAII region: accumulates its lifetime into the named component. */
    class Scope
    {
      public:
        Scope(Profiler &profiler, std::string name)
            : profiler_(profiler), name_(std::move(name)) {}

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        ~Scope() { profiler_.addSeconds(name_, watch_.seconds()); }

      private:
        Profiler &profiler_;
        std::string name_;
        Stopwatch watch_;
    };

    /** Open a timed region for @p name. */
    Scope scope(std::string name) { return Scope(*this, std::move(name)); }

    /** Directly add @p seconds to component @p name. */
    void addSeconds(const std::string &name, double seconds);

    /** Total seconds recorded for @p name (0 if never seen). */
    double seconds(const std::string &name) const;

    /** Sum over all components. */
    double totalSeconds() const;

    /** Fraction of the total attributed to @p name, in [0, 1]. */
    double fraction(const std::string &name) const;

    /** All component names, sorted by descending time. */
    std::vector<std::string> componentsByTime() const;

    /** Merge every component of @p other into this profiler. */
    void merge(const Profiler &other);

    /** Drop all recorded data. */
    void clear();

    /** Render a "name  seconds  percent" table. */
    std::string report() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, double> seconds_;

    /** Copy the table under the lock so readers compute lock-free. */
    std::map<std::string, double> snapshotTable() const;
};

} // namespace sirius

#endif // SIRIUS_COMMON_PROFILER_H
