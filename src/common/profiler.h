/**
 * @file
 * Named accumulating profiler used for the cycle-breakdown experiments.
 *
 * The paper uses Intel VTune to attribute cycles to algorithmic components
 * (Figure 9). We substitute wall-time attribution: each component wraps its
 * hot region in Profiler::scope("name") and the bench prints the resulting
 * percentage breakdown.
 */

#ifndef SIRIUS_COMMON_PROFILER_H
#define SIRIUS_COMMON_PROFILER_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"

namespace sirius {

/**
 * Accumulates per-component wall time under string keys.
 *
 * Thread-safe: concurrent server workers attribute stage time into one
 * shared Profiler, so every accessor takes an internal mutex. Scopes time
 * their region without holding the lock and only lock to accumulate.
 */
class Profiler
{
  public:
    /** Accumulated statistics of one named component. */
    struct Component
    {
        double seconds = 0.0;    ///< total accumulated wall time
        uint64_t calls = 0;      ///< number of recorded regions
        double minSeconds = 0.0; ///< fastest single region (0 if none)
        double maxSeconds = 0.0; ///< slowest single region

        /** Mean seconds per call; 0 when never called. */
        double
        meanSeconds() const
        {
            return calls > 0
                ? seconds / static_cast<double>(calls)
                : 0.0;
        }
    };

    /** RAII region: accumulates its lifetime into the named component. */
    class Scope
    {
      public:
        Scope(Profiler &profiler, std::string name)
            : profiler_(profiler), name_(std::move(name)) {}

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        ~Scope() { profiler_.addSeconds(name_, watch_.seconds()); }

      private:
        Profiler &profiler_;
        std::string name_;
        Stopwatch watch_;
    };

    /** Open a timed region for @p name. */
    Scope scope(std::string name) { return Scope(*this, std::move(name)); }

    /** Directly add @p seconds to component @p name. */
    void addSeconds(const std::string &name, double seconds);

    /** Total seconds recorded for @p name (0 if never seen). */
    double seconds(const std::string &name) const;

    /** Full statistics for @p name (zeroed if never seen). */
    Component component(const std::string &name) const;

    /** Every component's statistics, keyed by name. */
    std::map<std::string, Component> components() const;

    /** Sum over all components. */
    double totalSeconds() const;

    /** Fraction of the total attributed to @p name, in [0, 1]. */
    double fraction(const std::string &name) const;

    /** All component names, sorted by descending time. */
    std::vector<std::string> componentsByTime() const;

    /** Merge every component of @p other into this profiler. */
    void merge(const Profiler &other);

    /** Drop all recorded data. */
    void clear();

    /** Render a "name seconds percent calls mean min max" table. */
    std::string report() const;

    /**
     * Export every component into @p registry:
     * `sirius_component_seconds{component=...}` (gauge),
     * `sirius_component_calls_total` (counter), and min/max gauges.
     * @p base labels are attached to every instance.
     */
    void exportTo(MetricsRegistry &registry,
                  const MetricLabels &base = {}) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Component> components_;

    /** Copy the table under the lock so readers compute lock-free. */
    std::map<std::string, Component> snapshotTable() const;
};

} // namespace sirius

#endif // SIRIUS_COMMON_PROFILER_H
