#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace sirius {

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0)
        fatal("ThreadPool requires at least one worker");
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    jobReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
        ++inFlight_;
    }
    jobReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            jobReady_.wait(lock,
                           [this] { return shutdown_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (shutdown_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(size_t count, size_t threads,
            const std::function<void(size_t, size_t)> &body)
{
    if (count == 0)
        return;
    threads = std::clamp<size_t>(threads, 1, count);
    if (threads == 1) {
        body(0, count);
        return;
    }
    const size_t chunk = (count + threads - 1) / threads;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(count, begin + chunk);
        if (begin >= end)
            break;
        pool.emplace_back([&body, begin, end] { body(begin, end); });
    }
    for (auto &th : pool)
        th.join();
}

void
parallelForStrided(size_t count, size_t threads,
                   const std::function<void(size_t, size_t)> &body)
{
    if (count == 0)
        return;
    threads = std::clamp<size_t>(threads, 1, count);
    if (threads == 1) {
        body(0, 1);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t)
        pool.emplace_back([&body, t, threads] { body(t, threads); });
    for (auto &th : pool)
        th.join();
}

} // namespace sirius
