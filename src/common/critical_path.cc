#include "common/critical_path.h"

#include <algorithm>

namespace sirius {

namespace {

/** Attr lookup; empty string when absent. */
std::string
attrOf(const SpanRecord &span, const char *key)
{
    for (const auto &[k, v] : span.attrs)
        if (k == key)
            return v;
    return std::string();
}

/**
 * Sweep @p children (sorted by start) over [t0, t_end], emitting one
 * segment per child interval and one gap segment per uncovered hole.
 * Boundaries are computed once and chained, so the partition sums to
 * t_end - t0 exactly (modulo float addition).
 */
void
sweepSegments(const std::vector<const SpanRecord *> &children, double t0,
              double t_end, const std::string &head_gap,
              const std::string &tail_gap, CriticalPathReport &report)
{
    double cursor = t0;
    bool first = true;
    for (const SpanRecord *child : children) {
        const double start =
            std::clamp(child->startSeconds, cursor, t_end);
        const double end = std::clamp(
            child->startSeconds + child->durationSeconds, start, t_end);
        if (start > cursor) {
            CriticalPathSegment gap;
            gap.name = first ? head_gap : "other";
            gap.kind = "gap";
            gap.startSeconds = cursor;
            gap.durationSeconds = start - cursor;
            report.segments.push_back(std::move(gap));
        }
        first = false;
        if (end > start) {
            CriticalPathSegment segment;
            segment.name = child->name;
            segment.kind = spanKindName(child->kind);
            segment.startSeconds = start;
            segment.durationSeconds = end - start;
            report.segments.push_back(std::move(segment));
            cursor = end;
        } else {
            cursor = std::max(cursor, start);
        }
    }
    if (cursor < t_end) {
        CriticalPathSegment gap;
        gap.name = first ? head_gap : tail_gap;
        gap.kind = "gap";
        gap.startSeconds = cursor;
        gap.durationSeconds = t_end - cursor;
        report.segments.push_back(std::move(gap));
    }
}

/** Direct children of @p parent_id with a real duration, by start. */
std::vector<const SpanRecord *>
childrenOf(const std::vector<SpanRecord> &spans, uint32_t parent_id)
{
    std::vector<const SpanRecord *> children;
    for (const SpanRecord &span : spans)
        if (span.parentId == parent_id && span.spanId != parent_id &&
            span.durationSeconds > 0.0)
            children.push_back(&span);
    std::sort(children.begin(), children.end(),
              [](const SpanRecord *a, const SpanRecord *b) {
                  if (a->startSeconds != b->startSeconds)
                      return a->startSeconds < b->startSeconds;
                  return a->spanId < b->spanId;
              });
    return children;
}

} // namespace

double
CriticalPathReport::sumSeconds() const
{
    double sum = 0.0;
    for (const CriticalPathSegment &segment : segments)
        sum += segment.durationSeconds;
    return sum;
}

std::map<uint64_t, std::vector<SpanRecord>>
groupByTrace(const std::vector<SpanRecord> &spans)
{
    std::map<uint64_t, std::vector<SpanRecord>> traces;
    for (const SpanRecord &span : spans)
        traces[span.traceId].push_back(span);
    return traces;
}

CriticalPathReport
analyzeCriticalPath(const std::vector<SpanRecord> &trace_spans)
{
    CriticalPathReport report;
    if (trace_spans.empty())
        return report;
    report.traceId = trace_spans.front().traceId;

    const SpanRecord *summary = nullptr; ///< router "route" span
    const SpanRecord *winnerLeg = nullptr;
    std::vector<const SpanRecord *> legSpans;
    for (const SpanRecord &span : trace_spans) {
        if (span.kind != SpanKind::Route)
            continue;
        if (span.parentId == 0 && span.name == "route") {
            summary = &span;
        } else if (span.name == "route_leg") {
            legSpans.push_back(&span);
            if (attrOf(span, "won") == "1")
                winnerLeg = &span;
        }
    }

    const SpanRecord *root = nullptr; ///< the leaf "query" span to walk
    double t0 = 0.0;
    double tEnd = 0.0;
    if (summary != nullptr) {
        report.stitched = true;
        report.valid = true;
        report.legs = static_cast<int>(legSpans.size());
        for (const SpanRecord *leg : legSpans) {
            const std::string arm = attrOf(*leg, "arm");
            if (arm == "hedge")
                report.hedged = true;
            if (arm == "failover")
                ++report.failovers;
        }
        if (winnerLeg != nullptr) {
            report.winnerArm = attrOf(*winnerLeg, "arm");
            report.winnerShard = attrOf(*winnerLeg, "shard");
            for (const SpanRecord &span : trace_spans)
                if (span.kind == SpanKind::Query &&
                    span.parentId == winnerLeg->spanId) {
                    root = &span;
                    break;
                }
        }
        report.totalSeconds = summary->durationSeconds;
        t0 = summary->startSeconds;
        tEnd = t0 + summary->durationSeconds;
    } else {
        for (const SpanRecord &span : trace_spans)
            if (span.kind == SpanKind::Query && span.parentId == 0) {
                root = &span;
                break;
            }
        if (root == nullptr)
            return report; // no root at all: unattributable
        report.valid = true;
        report.winnerArm = "local";
        report.totalSeconds = root->durationSeconds;
        t0 = root->startSeconds;
        tEnd = t0 + root->durationSeconds;
    }

    if (root != nullptr) {
        report.degradation = attrOf(*root, "degradation");
        if (report.degradation.empty())
            report.degradation = "none";
        // Head gap: time between the router accepting the query and the
        // winning leg's root starting (routing + shard admission). Tail
        // gap: leg completion back to delivery. Single-server traces
        // have neither (head gap degenerates to "other").
        const std::vector<const SpanRecord *> children =
            childrenOf(trace_spans, root->spanId);
        sweepSegments(children, t0, tEnd,
                      report.stitched ? "route_dispatch" : "other",
                      report.stitched ? "route_deliver" : "other",
                      report);
        // Kernel rollup for the winning leg: descendants of the root.
        std::map<uint32_t, const SpanRecord *> byId;
        for (const SpanRecord &span : trace_spans)
            byId[span.spanId] = &span;
        for (const SpanRecord &span : trace_spans) {
            if (span.kind != SpanKind::Kernel)
                continue;
            uint32_t ancestor = span.parentId;
            for (int depth = 0; depth < 64 && ancestor != 0; ++depth) {
                if (ancestor == root->spanId) {
                    report.kernelSeconds[span.name] +=
                        span.durationSeconds;
                    break;
                }
                auto it = byId.find(ancestor);
                ancestor = it == byId.end() ? 0 : it->second->parentId;
            }
        }
    } else if (report.stitched) {
        // Leg spans lost (ring overwrote them): attribute everything to
        // routing rather than pretending we know more.
        CriticalPathSegment segment;
        segment.name = "route";
        segment.kind = "route";
        segment.startSeconds = t0;
        segment.durationSeconds = tEnd - t0;
        report.segments.push_back(std::move(segment));
    }
    return report;
}

} // namespace sirius
