// NEON kernel table for aarch64 (NEON with double-precision lanes is
// architecturally guaranteed there, so no runtime probe is needed).
//
// Lane semantics deliberately mirror the x86 tables so the bitwise
// contract stays ISA-independent: max is compare+select (a > b ? a : b,
// picking b on NaN or equal, exactly std::max(b, a)), and addsub is
// expressed as a + (-b, +b) — IEEE negation is exact, so even lanes
// equal a - b bit-for-bit.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "common/simd_body.h"

namespace sirius::simd {

namespace {

struct NeonTraits
{
    using F32 = float32x4_t;
    using F64 = float64x2_t;
    static constexpr size_t kF32 = 4;
    static constexpr size_t kF64 = 2;

    static F32 load32(const float *p) { return vld1q_f32(p); }
    static void store32(float *p, F32 v) { vst1q_f32(p, v); }
    static F32 set132(float v) { return vdupq_n_f32(v); }
    static F32 zero32() { return vdupq_n_f32(0.0f); }
    static F32 add32(F32 a, F32 b) { return vaddq_f32(a, b); }
    static F32 sub32(F32 a, F32 b) { return vsubq_f32(a, b); }
    static F32 mul32(F32 a, F32 b) { return vmulq_f32(a, b); }

    static F32
    max32(F32 a, F32 b)
    {
        return vbslq_f32(vcgtq_f32(a, b), a, b);
    }

    static void
    transpose32(F32 r[kF32])
    {
        const float32x4x2_t p01 = vtrnq_f32(r[0], r[1]);
        const float32x4x2_t p23 = vtrnq_f32(r[2], r[3]);
        r[0] = vcombine_f32(vget_low_f32(p01.val[0]),
                            vget_low_f32(p23.val[0]));
        r[1] = vcombine_f32(vget_low_f32(p01.val[1]),
                            vget_low_f32(p23.val[1]));
        r[2] = vcombine_f32(vget_high_f32(p01.val[0]),
                            vget_high_f32(p23.val[0]));
        r[3] = vcombine_f32(vget_high_f32(p01.val[1]),
                            vget_high_f32(p23.val[1]));
    }

    static F64 load64(const double *p) { return vld1q_f64(p); }
    static void store64(double *p, F64 v) { vst1q_f64(p, v); }
    static F64 set164(double v) { return vdupq_n_f64(v); }
    static F64 zero64() { return vdupq_n_f64(0.0); }
    static F64 add64(F64 a, F64 b) { return vaddq_f64(a, b); }
    static F64 sub64(F64 a, F64 b) { return vsubq_f64(a, b); }
    static F64 mul64(F64 a, F64 b) { return vmulq_f64(a, b); }
    static F64 div64(F64 a, F64 b) { return vdivq_f64(a, b); }

    static F64
    max64(F64 a, F64 b)
    {
        return vbslq_f64(vcgtq_f64(a, b), a, b);
    }

    static F64
    cmpGt64(F64 a, F64 b)
    {
        return vreinterpretq_f64_u64(vcgtq_f64(a, b));
    }

    static F64
    cmpGe64(F64 a, F64 b)
    {
        return vreinterpretq_f64_u64(vcgeq_f64(a, b));
    }

    static F64
    blend64(F64 mask, F64 a, F64 b)
    {
        return vbslq_f64(vreinterpretq_u64_f64(mask), a, b);
    }

    static void
    transpose64(F64 r[kF64])
    {
        const F64 t0 = vzip1q_f64(r[0], r[1]);
        const F64 t1 = vzip2q_f64(r[0], r[1]);
        r[0] = t0;
        r[1] = t1;
    }

    static F64 dupEven64(F64 v) { return vdupq_laneq_f64(v, 0); }
    static F64 dupOdd64(F64 v) { return vdupq_laneq_f64(v, 1); }
    static F64 swapPairs64(F64 v) { return vextq_f64(v, v, 1); }

    static F64
    addsub64(F64 a, F64 b)
    {
        const uint64x2_t flip = vcombine_u64(
            vdup_n_u64(0x8000000000000000ULL), vdup_n_u64(0));
        return vaddq_f64(
            a, vreinterpretq_f64_u64(
                   veorq_u64(vreinterpretq_u64_f64(b), flip)));
    }

    static F64
    cvt32to64(const float *p)
    {
        return vcvt_f64_f32(vld1_f32(p));
    }

    static F64
    gather32to64(const float *const rows[kF64], size_t idx)
    {
        float32x2_t v = vdup_n_f32(rows[0][idx]);
        v = vset_lane_f32(rows[1][idx], v, 1);
        return vcvt_f64_f32(v);
    }

    static void
    widenTile(const float *const rows[kF64], F64 out[2 * kF64])
    {
        const F32 r0 = vld1q_f32(rows[0]);
        const F32 r1 = vld1q_f32(rows[1]);
        const F32 z0 = vzip1q_f32(r0, r1); // d0 pair, d1 pair
        const F32 z1 = vzip2q_f32(r0, r1); // d2 pair, d3 pair
        out[0] = vcvt_f64_f32(vget_low_f32(z0));
        out[1] = vcvt_f64_f32(vget_high_f32(z0));
        out[2] = vcvt_f64_f32(vget_low_f32(z1));
        out[3] = vcvt_f64_f32(vget_high_f32(z1));
    }
};

} // namespace

const KernelTable &
neonKernels()
{
    static const KernelTable table =
        detail::makeTable<NeonTraits>(Isa::Neon, "neon");
    return table;
}

} // namespace sirius::simd

#endif // __aarch64__
