/**
 * @file
 * Per-query tracing: trace contexts, RAII spans, and a bounded span
 * collector with head-based sampling.
 *
 * The paper attributes every conclusion to measurement — VTune cycle
 * breakdowns per algorithmic component (Figure 9), per-service latency
 * (Figure 14), queueing under load (Figure 17). Aggregate histograms
 * answer "how is the fleet doing"; a trace answers "where did *this*
 * query's budget go": queue wait vs. ASR vs. QA vs. IMM, retries,
 * injected faults, degradation decisions. A TraceContext travels the
 * same seams the Deadline already does (admission → worker → pipeline →
 * service kernels), and each instrumented region opens a Span that is
 * appended to the server's TraceCollector when it closes.
 *
 * Sampling is head-based: the keep/drop decision is made once at
 * admission from (seed, trace id), so a kept query records *all* of its
 * spans and a dropped query pays a single thread-local pointer read per
 * instrumented region. That is what keeps tracing affordable at load.
 */

#ifndef SIRIUS_COMMON_TRACE_H
#define SIRIUS_COMMON_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sirius {

/** What an emitted span describes. */
enum class SpanKind
{
    Query,       ///< root span: one end-to-end query (admission → done)
    QueueWait,   ///< admission → worker dispatch
    Stage,       ///< a pipeline stage (asr, qa, imm, classify)
    Kernel,      ///< a kernel inside a stage (scoring, crf_filter, ...)
    Retry,       ///< instant event: one retry attempt of a stage
    Fault,       ///< instant event: an injected fault fired
    Degradation, ///< instant event: a rung-drop decision on the ladder
    Route,       ///< cluster tier: routing decision + legs of one query
};

/** Number of SpanKind values (for per-kind counters). */
inline constexpr size_t kSpanKinds = 8;

/** Short snake_case name ("query", "queue_wait", "stage", ...). */
const char *spanKindName(SpanKind kind);

/** Parse a spanKindName back; returns false on an unknown name. */
bool spanKindFromName(const std::string &name, SpanKind &out);

/** One closed span, as stored in the collector and exported to JSONL. */
struct SpanRecord
{
    uint64_t traceId = 0; ///< query-scoped id shared by all its spans
    uint32_t spanId = 0;  ///< unique within the trace, 1 = root
    uint32_t parentId = 0; ///< 0 = no parent (the root span)
    SpanKind kind = SpanKind::Stage;
    std::string name; ///< snake_case component name
    double startSeconds = 0.0;    ///< relative to the collector's epoch
    double durationSeconds = 0.0; ///< 0 for instant events
    /** Small key=value annotations (attempt, rung, fault kind, ...). */
    std::vector<std::pair<std::string, std::string>> attrs;
};

/**
 * Bounded ring of SpanRecords shared by every worker of a server.
 *
 * Appending claims a slot with one atomic fetch-add (so the hot path
 * never serializes on a global lock) and copies the record in under a
 * striped per-slot guard; when the ring wraps, the oldest spans are
 * overwritten, so a snapshot always holds the newest `capacity` spans.
 * The collector also owns the sampling decision: head-based, a
 * deterministic hash of (seed, trace id) against the sample rate, so a
 * fixed seed reproduces the same kept set run over run.
 */
class TraceCollector
{
  public:
    /**
     * @param capacity ring size in spans (>= 1)
     * @param sample_rate fraction of traces kept, in [0, 1]; 0 disables
     * @param seed sampling-hash seed (fixed seed = deterministic keeps)
     */
    explicit TraceCollector(size_t capacity = 4096,
                            double sample_rate = 1.0,
                            uint64_t seed = 0xC011EC70ULL);

    /** Head-based sampling decision for @p trace_id (pure function). */
    bool sampled(uint64_t trace_id) const;

    /** The configured sample rate in [0, 1]. */
    double sampleRate() const { return sampleRate_; }

    /** Seconds since the collector's epoch (span timestamps base). */
    double nowSeconds() const;

    /**
     * Adopt @p other's epoch so timestamps from both collectors live on
     * one clock. The cluster tier aligns every shard collector to the
     * router's at construction — that is what makes cross-collector gap
     * arithmetic (route dispatch → leg start) meaningful in a stitched
     * trace. Call before any spans are recorded.
     */
    void alignEpochTo(const TraceCollector &other) { epoch_ = other.epoch_; }

    /** Append one closed span (thread-safe, lock-free slot claim). */
    void append(SpanRecord record);

    /** Spans ever appended, including ones the ring has overwritten. */
    uint64_t appended() const;

    /**
     * Spans lost to the bounded ring: overwritten by a wrap or discarded
     * because the ring lapped a slow appender. Exported by the server as
     * `sirius_trace_dropped_total`; zero means every recorded span is
     * still in the ring.
     */
    uint64_t dropped() const;

    /** Spans currently retained (== min(appended, capacity)). */
    size_t size() const;

    /** Ring capacity in spans. */
    size_t capacity() const { return slots_.size(); }

    /**
     * Copy of the retained spans, oldest first. Safe under concurrent
     * append; spans mid-write are skipped rather than torn.
     */
    std::vector<SpanRecord> snapshot() const;

    /** Drop all retained spans (the epoch is left untouched). */
    void clear();

  private:
    struct Slot
    {
        mutable std::mutex guard;
        uint64_t seq = 0; ///< 1-based append sequence; 0 = empty
        SpanRecord record;
    };

    double sampleRate_;
    uint64_t seed_;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<Slot> slots_;
    std::atomic<uint64_t> next_{0};    ///< total appends ever claimed
    std::atomic<uint64_t> dropped_{0}; ///< spans lost to the ring bound
};

/**
 * Identity a multi-leg (cluster) query stamps onto a shard submission so
 * the shard's spans stitch into the router's trace.
 *
 * The default binding means "this server owns the trace": the server
 * allocates the trace id from its own sequence and the root span sits at
 * the top of the trace. A router instead passes its own trace id, a
 * per-leg span-id base (so hedge/failover legs sharing the trace never
 * collide on span ids), and the id of the route-leg span the shard's
 * root should nest under.
 */
struct TraceBinding
{
    uint64_t traceId = 0;      ///< 0 = the server allocates its own
    uint32_t spanIdBase = 0;   ///< span ids start at spanIdBase + 1
    uint32_t rootParentId = 0; ///< router leg span the root nests under
};

/**
 * The per-query trace handle carried from admission to completion.
 *
 * An unsampled (or default-constructed) context is inert: every Span
 * opened under it is a no-op. A sampled context points at its server's
 * collector and allocates span ids; exactly one worker thread drives a
 * query at a time, so the id fields need no synchronization.
 *
 * Spans find the context through a thread-local pointer installed by
 * ScopedTraceActivation — the same "ambient" pattern the deadline
 * avoided (it is checked on hot paths), chosen here so service kernels
 * can open spans without widening every transcribe()/answer()/match()
 * signature.
 */
class TraceContext
{
  public:
    /** Inert context: active() is false, spans are no-ops. */
    TraceContext() = default;

    /**
     * Context for @p trace_id feeding @p collector; inert when the
     * collector's sampling decision drops the id. @p span_id_base
     * offsets every id this context allocates (stitched multi-leg
     * traces give each leg a disjoint id range); @p root_parent_id is
     * the parent the root span closes under (0 = top of the trace).
     */
    TraceContext(TraceCollector &collector, uint64_t trace_id,
                 uint32_t span_id_base = 0, uint32_t root_parent_id = 0);

    /** True when spans opened under this context are recorded. */
    bool active() const { return collector_ != nullptr; }

    uint64_t traceId() const { return traceId_; }

    /** The collector receiving this trace's spans; null when inert. */
    TraceCollector *collector() const { return collector_; }

    /**
     * Record a span with explicit timing — used for spans whose start
     * predates the worker (queue wait, the root query span). No-op when
     * inert.
     * @return the span id used (0 when inert)
     */
    uint32_t recordSpan(
        SpanKind kind, const std::string &name, double start_seconds,
        double duration_seconds, uint32_t parent_id = 0,
        std::vector<std::pair<std::string, std::string>> attrs = {});

    /**
     * Reserve the root span's id and nest subsequent spans under it.
     * The root itself is recorded by closeRoot() once the query is done
     * (that is when its duration is known).
     * @return the reserved id (0 when inert)
     */
    uint32_t openRoot();

    /** Record the root span reserved by openRoot(). No-op when inert. */
    void closeRoot(
        const std::string &name, double start_seconds,
        double duration_seconds,
        std::vector<std::pair<std::string, std::string>> attrs = {});

    /**
     * Record an instant event at the current nesting position. No-op
     * when inert.
     */
    void event(SpanKind kind, const std::string &name,
               std::vector<std::pair<std::string, std::string>> attrs = {});

    /**
     * Reserve a span id without recording anything (0 when inert). A
     * router reserves the leg span's id at dispatch so the shard can
     * parent its root under it, and records the leg span later with
     * recordReserved() once the leg's outcome and duration are known.
     */
    uint32_t reserveSpanId();

    /** Record a span under an id reserved by reserveSpanId(). */
    void recordReserved(
        uint32_t span_id, SpanKind kind, const std::string &name,
        double start_seconds, double duration_seconds,
        uint32_t parent_id = 0,
        std::vector<std::pair<std::string, std::string>> attrs = {});

    /**
     * Divert this context's spans into a per-query buffer instead of the
     * collector. The flight recorder needs whole traces; buffering keeps
     * a query's spans together so the server can hand one copy to the
     * recorder and flush the rest to the ring. No-op when inert.
     */
    void bufferSpans();

    /**
     * Move out the buffered spans (empty when bufferSpans() was never
     * called); subsequent spans go straight to the collector again.
     */
    std::vector<SpanRecord> takeBuffered();

    /** The context installed on this thread; null when none. */
    static TraceContext *current();

    /** Id of the span children currently nest under (0 = root level). */
    uint32_t currentParent() const { return currentParent_; }

  private:
    friend class Span;
    friend class ScopedTraceActivation;

    uint32_t allocSpanId() { return nextSpanId_++; }

    /** Buffered when a buffer is attached, else straight to the ring. */
    void sink(SpanRecord &&record);

    TraceCollector *collector_ = nullptr;
    uint64_t traceId_ = 0;
    uint32_t nextSpanId_ = 1;
    uint32_t currentParent_ = 0;
    uint32_t rootId_ = 0;
    uint32_t rootParentId_ = 0;
    /** Shared so by-value copies of the context feed one buffer. */
    std::shared_ptr<std::vector<SpanRecord>> buffer_;
};

/**
 * Installs a TraceContext as the thread's current context for its
 * lifetime (restoring the previous one after), and tags log lines with
 * the trace id so logs and traces correlate.
 */
class ScopedTraceActivation
{
  public:
    explicit ScopedTraceActivation(TraceContext &context);
    ScopedTraceActivation(const ScopedTraceActivation &) = delete;
    ScopedTraceActivation &operator=(const ScopedTraceActivation &) =
        delete;
    ~ScopedTraceActivation();

  private:
    TraceContext *previous_;
    std::string previousTag_;
};

/**
 * RAII timed region: opens on construction, closes (and appends its
 * record to the collector) on destruction or end(). Spans nest: a span
 * opened while another is open becomes its child, and the nesting is
 * restored when it closes. Against an inert or absent context the whole
 * object is a no-op costing one thread-local read.
 */
class Span
{
  public:
    /** Open a span under the thread's current context (maybe none). */
    Span(const char *name, SpanKind kind);

    /** Open a span under an explicit context. */
    Span(TraceContext *context, const char *name, SpanKind kind);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span() { end(); }

    /** True when this span will be recorded. */
    bool active() const { return context_ != nullptr; }

    /** Attach a key=value annotation (no-op when inactive). */
    void attr(const char *key, std::string value);

    /** Close early; further attr() calls are ignored. */
    void end();

  private:
    void open(TraceContext *context, const char *name, SpanKind kind);

    TraceContext *context_ = nullptr; ///< null = inert span
    SpanRecord record_;
    uint32_t savedParent_ = 0;
};

/** Serialize one span as a single-line JSON object (no newline). */
std::string spanToJson(const SpanRecord &span);

/**
 * Parse a spanToJson() line back into a record.
 * @return false when @p line is not a valid span object
 */
bool spanFromJson(const std::string &line, SpanRecord &out);

/** Write spans as JSONL (one spanToJson() line each) to @p path. */
bool writeTraceJsonl(const std::string &path,
                     const std::vector<SpanRecord> &spans,
                     bool append = false);

/**
 * Read a JSONL trace file written by writeTraceJsonl(). Unparseable
 * lines are skipped and counted into @p malformed when non-null.
 */
std::vector<SpanRecord> readTraceJsonl(const std::string &path,
                                       size_t *malformed = nullptr);

} // namespace sirius

#endif // SIRIUS_COMMON_TRACE_H
