/**
 * @file
 * Seeded, rate-based fault injection for the pipeline stages.
 *
 * A WSC leaf must survive misbehaving dependencies: a stage that throws,
 * stalls, or returns garbage. FaultInjector makes those behaviours
 * reproducible so the degradation paths in core::SiriusPipeline (retry,
 * skip, VIQ→VQ→VC downgrade) can be tested and benched deterministically
 * instead of waiting for real failures.
 */

#ifndef SIRIUS_COMMON_FAULT_INJECTION_H
#define SIRIUS_COMMON_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/deadline.h"
#include "common/rng.h"

namespace sirius {

/** What a single injected fault does to one stage attempt. */
enum class StageFault
{
    None,       ///< the attempt proceeds normally
    Failure,    ///< the stage fails outright (retriable)
    Latency,    ///< the stage runs, but only after added latency
    Corruption, ///< the stage runs, but its output is corrupted
};

/** Human-readable fault name ("none", "failure", ...). */
const char *stageFaultName(StageFault fault);

/** Rates and scope of injected faults. Rates must sum to <= 1. */
struct FaultConfig
{
    double failureRate = 0.0;    ///< P(stage attempt fails)
    double latencyRate = 0.0;    ///< P(added latency)
    double corruptionRate = 0.0; ///< P(corrupted output)
    double addedLatencySeconds = 0.02; ///< stall per Latency fault

    /**
     * When set, a Latency fault advances this virtual clock instead of
     * sleeping for real. Tests pair it with Deadline::afterManual so a
     * "3 s stall" is instantaneous and immune to machine load.
     */
    ManualTime *latencyClock = nullptr;

    // Which pipeline stages the injector targets. Narrowing the scope
    // makes degradation arithmetic exact in tests (e.g. QA-only faults
    // at rate r => degraded fraction r).
    bool faultAsr = true;
    bool faultQa = true;
    bool faultImm = true;

    uint64_t seed = 0x5EEDFA17ULL;
};

/**
 * Draws one fault decision per stage attempt from a seeded stream.
 *
 * Thread-safe: the worker pool shares one injector, so the draw itself
 * is mutex-guarded (it is a single PRNG step, far off any hot path) and
 * the observability counters are atomics. With a fixed seed the draw
 * *stream* is deterministic; under concurrent submitters the
 * interleaving is not, but the aggregate counts still follow the
 * configured rates, which is the property tests assert.
 */
class FaultInjector
{
  public:
    /** Disabled injector: every draw returns StageFault::None. */
    FaultInjector() = default;

    /** @param config rates; fatal if the rates sum above 1. */
    explicit FaultInjector(FaultConfig config);

    /** True when any fault rate is nonzero and the injector is armed. */
    bool enabled() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Runtime kill switch: arm or disarm the injector without touching
     * its configuration. Disarming makes every draw() return None; used
     * by recovery drills ("the dependency came back") so an ejected
     * shard's probes can start succeeding mid-run. Re-arming resumes the
     * configured rates (a no-op when every rate is zero).
     */
    void setEnabled(bool enabled)
    {
        armed_.store(enabled && configured_,
                     std::memory_order_relaxed);
    }

    /**
     * Decide the fate of one attempt of @p stage ("asr", "qa", "imm").
     * Stages outside the configured scope always draw None without
     * consuming a PRNG step, so narrowing the scope does not shift the
     * stream seen by the targeted stages.
     */
    StageFault draw(const std::string &stage);

    /**
     * Deterministically corrupt @p text (seeded character scramble that
     * always differs from the input for non-empty text) — the payload
     * of a Corruption fault on a text-producing stage.
     */
    std::string corrupt(const std::string &text);

    /** Total draws that returned each kind (observability). */
    uint64_t failuresInjected() const { return failures_.load(); }
    uint64_t latenciesInjected() const { return latencies_.load(); }
    uint64_t corruptionsInjected() const { return corruptions_.load(); }
    uint64_t draws() const { return draws_.load(); }

    const FaultConfig &config() const { return config_; }

  private:
    FaultConfig config_;
    bool configured_ = false;    ///< any rate nonzero at construction
    std::atomic<bool> armed_{false}; ///< setEnabled() kill switch

    std::mutex mutex_; ///< guards rng_
    Rng rng_;

    std::atomic<uint64_t> draws_{0};
    std::atomic<uint64_t> failures_{0};
    std::atomic<uint64_t> latencies_{0};
    std::atomic<uint64_t> corruptions_{0};
};

} // namespace sirius

#endif // SIRIUS_COMMON_FAULT_INJECTION_H
