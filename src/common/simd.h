/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the Fig-9 dominant kernels.
 *
 * One process-wide KernelTable holds function pointers for every hot
 * loop the paper's cycle breakdown blames (DNN matmul/matvec, GMM
 * log-density scoring, SURF box filters and descriptor math, FFT
 * butterflies, DCT/mel reductions, CRF Viterbi). The table is selected
 * once at first use — scalar, SSE4.2 or AVX2 on x86 (probed via CPUID),
 * NEON on aarch64 — and can be pinned with `SIRIUS_SIMD=scalar|sse|
 * avx2|native` for A/B runs or programmatically with setIsa().
 *
 * ## The accumulation-order contract (bitwise identity)
 *
 * Every vector kernel MUST produce bit-identical results to its scalar
 * reference (the exact loops that used to live at the call sites, kept
 * verbatim as the Scalar table). The whole repo leans on this: golden
 * e2e fixtures, the batch/cache/shard differential oracles, and the
 * fuzzer's diff_simd arm all compare float outputs for equality.
 *
 * The rule that makes it possible: vectorize ACROSS INDEPENDENT OUTPUT
 * ELEMENTS, never within one element's reduction. A SIMD lane owns one
 * output (one neuron, one GMM frame or component, one descriptor
 * candidate, one Viterbi target tag, one FFT butterfly) and performs
 * exactly the scalar code's operation sequence for that output — same
 * association, same inner-index ascending order, no FMA contraction
 * (the build sets -ffp-contract=off globally), no reordered reductions.
 * Loop tails fall back to the scalar sequence, continuing from the
 * per-lane partial values, so ragged shapes stay identical too.
 */

#ifndef SIRIUS_COMMON_SIMD_H
#define SIRIUS_COMMON_SIMD_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sirius {
class MetricsRegistry;
using MetricLabels = std::vector<std::pair<std::string, std::string>>;
} // namespace sirius

namespace sirius::simd {

/** Instruction sets a kernel table can be built for. */
enum class Isa { Scalar = 0, Sse = 1, Avx2 = 2, Neon = 3 };

/** Stable lowercase name ("scalar", "sse", "avx2", "neon"). */
const char *isaName(Isa isa);

/** Parse an isaName() string (also accepts "sse4.2"). "native" is NOT
 *  accepted here — it is resolved by initFromEnvironment(). */
bool parseIsa(const std::string &name, Isa &out);

/** The widest ISA the running CPU supports. */
Isa bestSupportedIsa();

/** Whether @p isa can run on this host (Scalar always can). */
bool isaSupported(Isa isa);

/** All host-runnable ISAs, Scalar first, widest last. */
std::vector<Isa> supportedIsas();

/**
 * The dispatch table: one function pointer per dominant kernel. All
 * pointers are non-null in every table. Pointer/size arguments follow
 * the call sites' row-major layouts; no alignment is required anywhere
 * (kernels use unaligned loads), so callers may pass arbitrary slices.
 */
struct KernelTable
{
    Isa isa;
    const char *name;

    /** out[i*m+j] = sum_kk a[i*k+kk] * b[kk*m+j], kk ascending per
     *  output element (the register-blocked matmul contract). Writes
     *  every element of @p out. */
    void (*matmulF32)(const float *a, size_t n, size_t k, const float *b,
                      size_t m, float *out);

    /** out[r] = sum_c m[r*cols+c] * v[c], c ascending per row. */
    void (*matvecF32)(const float *m, size_t rows, size_t cols,
                      const float *v, float *out);

    /** data[i] = max(0, data[i]). */
    void (*reluF32)(float *data, size_t n);

    /** acc[i] += x[i]. */
    void (*addRowF32)(float *acc, const float *x, size_t n);

    /** data[i] += b. */
    void (*addScalarF32)(float *data, size_t n, float b);

    /** GMM batch scoring inner loop: for each frame lane j,
     *  acc[j] -= 0.5 * diff * diff * invVar[d] with
     *  diff = x[d*batch+j] - mean[d], for d = 0..dim-1 ascending —
     *  the DiagGaussian::logDensity chain run across frame lanes. */
    void (*gmmLanesF64)(double *acc, const double *x, size_t batch,
                        const float *mean, const float *inv_var,
                        size_t dim);

    /** Full per-component log densities of ONE frame: out[c] starts at
     *  log_norms[c] and subtracts 0.5*diff^2*invVar per dimension in
     *  ascending d order (lanes run across components c). */
    void (*gmmMixtureF64)(const float *x, size_t dim,
                          const float *const *means,
                          const float *const *inv_vars,
                          const float *log_norms, size_t count,
                          double *out);

    /** out[i] = squared L2 distance between @p q and descs[i] (both
     *  @p dim floats), accumulated in float with d ascending. */
    void (*descDistF32)(const float *q, const float *const *descs,
                        size_t count, size_t dim, float *out);

    /** desc[i] = float(double(desc[i]) / norm) — SURF L2 rescale. */
    void (*descNormalizeF32)(float *desc, size_t n, double norm);

    /**
     * SURF Hessian responses for @p count grid samples of one row.
     * Sample i sits at integral-table column c0 + i*step, row r; the
     * caller guarantees every box corner is inside the table (rows
     * 0..height, cols 0..width inclusive), so no clamping happens.
     * @p table is the (width+1)x(height+1) summed-area table with row
     * stride @p stride, @p filter_size / @p lobe the SURF filter
     * geometry, @p inv the 1/filter_size^2 normalizer. Writes
     * responses[i] (float(det)) and laplacians[i] (dxx+dyy >= 0).
     */
    void (*hessianRowF64)(const double *table, size_t stride, int r,
                          int c0, int step, int count, int filter_size,
                          int lobe, double inv, float *responses,
                          uint8_t *laplacians);

    /** acc[i] += w[i]. */
    void (*addRowF64)(double *acc, const double *w, size_t n);

    /** acc[i] += scale * x[i]. */
    void (*axpyF64)(double *acc, const double *x, double scale,
                    size_t n);

    /** One Viterbi step: for each target tag t (a lane),
     *  best[t] = max_p prev[p] + trans[p*num_tags+t] with p ascending
     *  and strict-> first-max tie-breaking; arg[t] = that argmax p. */
    void (*viterbiStepF64)(const double *prev, const double *trans,
                           size_t num_tags, double *best, int32_t *arg);

    /**
     * One radix-2 FFT stage over interleaved complex data (@p n
     * complex values = 2n doubles): for every block of @p len and
     * butterfly k, u = d[i+k], v = d[i+k+len/2] * w[k],
     * d[i+k] = u+v, d[i+k+len/2] = u-v. @p twiddles holds len/2
     * interleaved complex twiddle factors (built serially by the
     * caller so the incremental w *= wlen product chain is preserved
     * bit-for-bit). Data must be finite and non-overflowing — the
     * vector path uses the naive complex product, which matches
     * std::complex exactly only when no NaN/Inf recovery is needed.
     */
    void (*fftPassF64)(double *data, size_t n, size_t len,
                       const double *twiddles);

    /** out[i] = re_i*re_i + im_i*im_i over @p count interleaved
     *  complex values (the power-spectrum kernel). */
    void (*complexNormF64)(const double *data, size_t count,
                           double *out);
};

/** The scalar reference table (always available; used by tests and
 *  benchmarks as the ground truth). */
const KernelTable &scalarKernels();

namespace detail {
extern std::atomic<const KernelTable *> g_table;
/** Slow path: resolve SIRIUS_SIMD / CPUID once, log, publish. */
const KernelTable &initTable();
} // namespace detail

/** The active kernel table. First call resolves SIRIUS_SIMD (scalar |
 *  sse | avx2 | native; unknown or unsupported values warn and fall
 *  back to native) and logs the decision at Info. */
inline const KernelTable &
kernels()
{
    const KernelTable *t =
        detail::g_table.load(std::memory_order_acquire);
    return t != nullptr ? *t : detail::initTable();
}

/** ISA of the active table. */
Isa activeIsa();

/** Pin the active table to @p isa.
 *  @return false (no change) when the host can't run it. */
bool setIsa(Isa isa);

/** Re-resolve SIRIUS_SIMD (for tests that setenv() mid-process) and
 *  make the result active. Returns the resolved ISA. */
Isa initFromEnvironment();

/** One line describing the dispatch decision, e.g.
 *  "simd: dispatch isa=avx2 supported=scalar,sse,avx2 env=native". */
std::string describeDispatch();

/** Export sirius_simd_dispatch{isa=} = 1 for the active ISA and
 *  sirius_simd_supported{isa=} = 1 per host-runnable ISA. */
void exportMetrics(MetricsRegistry &registry, const MetricLabels &base);

} // namespace sirius::simd

#endif // SIRIUS_COMMON_SIMD_H
