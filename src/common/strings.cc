#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sirius {

std::string
toLower(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return out;
}

std::vector<std::string>
split(const std::string &s, const std::string &delims)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start < s.size()) {
        const size_t pos = s.find_first_of(delims, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        if (pos > start)
            out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
format(const char *fmt, ...)
{
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return std::string(buf);
}

void
appendJsonString(std::string &out, const std::string &value)
{
    out += '"';
    for (unsigned char c : value) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

bool
JsonScanner::expect(char c)
{
    skipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c)
        return false;
    ++pos_;
    return true;
}

bool
JsonScanner::peek(char c)
{
    skipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
}

bool
JsonScanner::parseString(std::string &out)
{
    skipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"')
        return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
        char c = text_[pos_++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (pos_ >= text_.size())
            return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
                return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                char h = text_[pos_++];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            // We only ever emit \u00XX for control bytes.
            out += static_cast<char>(code & 0xFF);
            break;
          }
          default: return false;
        }
    }
    return false;
}

bool
JsonScanner::parseNumber(double &out)
{
    skipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
        ++pos_;
    }
    if (pos_ == start)
        return false;
    try {
        out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
        return false;
    }
    return true;
}

bool
JsonScanner::done()
{
    skipSpace();
    return pos_ >= text_.size();
}

void
JsonScanner::skipSpace()
{
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
    }
}

} // namespace sirius
