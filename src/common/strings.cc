#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sirius {

std::string
toLower(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return out;
}

std::vector<std::string>
split(const std::string &s, const std::string &delims)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start < s.size()) {
        const size_t pos = s.find_first_of(delims, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        if (pos > start)
            out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
format(const char *fmt, ...)
{
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return std::string(buf);
}

} // namespace sirius
