/**
 * @file
 * Always-on flight recorder: keeps whole traces for the slowest-N and
 * a uniform sample of completed queries under a hard byte budget.
 *
 * Head sampling (TraceCollector) answers "show me recent spans"; the
 * flight recorder answers the operator's question after an alert: "show
 * me the *whole trace* of the queries that were slow when it happened".
 * It retains complete stitched traces — router route spans plus every
 * leg's shard spans, merged by trace id — in two reservoirs: the
 * slowest-N by end-to-end duration (the tail the SLO cares about) and
 * an every-Kth uniform sample (the baseline to compare the tail
 * against). A hard byte budget bounds the whole structure so it can run
 * in production forever; evictions are counted, never silent.
 *
 * Legs of a cluster query finish before the router knows the query's
 * fate, so shard servers contribute spans with offerPartial() (staged,
 * not yet a keep decision) and the router completes the trace with
 * offer(), which merges the staged legs and decides. A hedge loser
 * finishing after delivery still lands via offerPartial(): merged when
 * its trace was kept, dropped otherwise.
 */

#ifndef SIRIUS_COMMON_FLIGHT_RECORDER_H
#define SIRIUS_COMMON_FLIGHT_RECORDER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace sirius {

/** FlightRecorder configuration. */
struct FlightRecorderConfig
{
    size_t slowestCapacity = 8;  ///< slowest-N reservoir size
    size_t sampleEvery = 16;     ///< keep every Kth completed trace
    size_t sampleCapacity = 32;  ///< uniform-sample reservoir size
    size_t byteBudget = 4 << 20; ///< hard cap over every kept span
    size_t pendingCapacity = 64; ///< staged partial traces (legs)
    /** > 0: reservoirs reset each window (slowest-N *per window*). */
    double windowSeconds = 0.0;
    /** Virtual clock for deterministic tests; null = steady_clock. */
    const ManualTime *clock = nullptr;
};

/** One retained trace. */
struct RecordedTrace
{
    uint64_t traceId = 0;
    std::string reason; ///< "slowest" or "sample"
    double endSeconds = 0.0;      ///< recorder clock at completion
    double durationSeconds = 0.0; ///< end-to-end (router's view)
    size_t bytes = 0;             ///< estimated retained size
    std::vector<SpanRecord> spans;
};

/** Counters for snapshots and metrics export. */
struct FlightRecorderStats
{
    uint64_t offered = 0;       ///< completed traces offered
    uint64_t partials = 0;      ///< leg contributions staged/merged
    uint64_t kept = 0;          ///< traces admitted to a reservoir
    uint64_t merged = 0;        ///< late legs merged into kept traces
    uint64_t evicted = 0;       ///< displaced by capacity or budget
    uint64_t droppedBudget = 0; ///< rejected: over the byte budget
    uint64_t windowRolls = 0;
    size_t bytes = 0;        ///< currently retained bytes
    size_t retained = 0;     ///< currently retained traces
    size_t slowestCount = 0; ///< of which in the slowest-N reservoir
    size_t sampleCount = 0;  ///< of which in the uniform sample
};

/** See the file comment. All methods are thread-safe. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightRecorderConfig config = {});

    /**
     * Offer a completed trace: merge any staged legs for @p trace_id,
     * then decide whether to keep it (slowest-N or uniform sample)
     * under the byte budget. @p duration_seconds is the end-to-end
     * latency the reservoirs rank by.
     */
    void offer(uint64_t trace_id, double duration_seconds,
               std::vector<SpanRecord> spans);

    /**
     * Contribute spans of one leg of a not-yet-completed trace. Staged
     * until the completing offer() arrives; merged directly when the
     * trace is already kept; dropped when the trace was already
     * rejected (or the staging area overflows).
     */
    void offerPartial(uint64_t trace_id, std::vector<SpanRecord> spans);

    /** Retained traces, slowest first. */
    std::vector<RecordedTrace> snapshot() const;

    FlightRecorderStats stats() const;

    /**
     * Write every retained trace's spans as JSONL (readable by
     * examples/trace_report). @return false on I/O failure.
     */
    bool dumpJsonl(const std::string &path) const;

    /**
     * Export `sirius_flight_traces_total{outcome=}` counters and the
     * `sirius_flight_bytes` / `sirius_flight_retained{set=}` gauges.
     */
    void exportTo(MetricsRegistry &registry,
                  const MetricLabels &base = {}) const;

    /** Drop all retained and staged traces (counters are kept). */
    void clear();

    /** Current time on the recorder's clock. */
    double nowSeconds() const;

  private:
    static size_t spanBytes(const SpanRecord &span);
    void rollWindowLocked(double now);
    /** Evict per policy until the budget holds; never evicts @p keep. */
    void enforceBudgetLocked(uint64_t keep);
    void eraseLocked(uint64_t trace_id);

    FlightRecorderConfig config_;
    mutable std::mutex mutex_;
    std::map<uint64_t, RecordedTrace> kept_;
    std::deque<uint64_t> sampleOrder_; ///< uniform sample, oldest first
    /** Staged legs awaiting their completing offer, oldest first. */
    std::deque<std::pair<uint64_t, std::vector<SpanRecord>>> pending_;
    size_t bytes_ = 0;
    double windowStart_ = 0.0;
    FlightRecorderStats stats_;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace sirius

#endif // SIRIUS_COMMON_FLIGHT_RECORDER_H
