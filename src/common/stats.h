/**
 * @file
 * Running statistics, percentile summaries and fixed-bin histograms.
 *
 * These back the latency-distribution experiments (Figure 8a) and the
 * summary rows every bench binary prints.
 */

#ifndef SIRIUS_COMMON_STATS_H
#define SIRIUS_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace sirius {

/**
 * Accumulates samples and answers mean / stddev / min / max / percentile
 * queries. Samples are retained, so percentiles are exact.
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Add every value in @p values. */
    void addAll(const std::vector<double> &values);

    /** Number of samples added so far. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population standard deviation; 0 when empty. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Convenience alias for percentile(50). */
    double median() const { return percentile(50.0); }

    /** The raw samples, in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;

    void ensureSorted() const;
};

/** A fixed-width-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bin
     * @param hi exclusive upper bound of the last bin
     * @param bins number of equal-width bins (>= 1)
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample; out-of-range samples clamp to the edge bins. */
    void add(double value);

    /** Count in bin @p idx. */
    uint64_t binCount(size_t idx) const { return counts_.at(idx); }

    /** Number of bins. */
    size_t binCount() const = delete;

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of bin @p idx. */
    double binLow(size_t idx) const;

    /** Total samples added. */
    uint64_t total() const { return total_; }

    /** Render a terminal bar chart, one line per bin. */
    std::string render(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 when either series is constant or the lengths differ.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace sirius

#endif // SIRIUS_COMMON_STATS_H
