/**
 * @file
 * Running statistics, percentile summaries and fixed-bin histograms.
 *
 * These back the latency-distribution experiments (Figure 8a) and the
 * summary rows every bench binary prints.
 */

#ifndef SIRIUS_COMMON_STATS_H
#define SIRIUS_COMMON_STATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sirius {

/**
 * Accumulates samples and answers mean / stddev / min / max / percentile
 * queries. Samples are retained, so percentiles are exact.
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Add every value in @p values. */
    void addAll(const std::vector<double> &values);

    /** Number of samples added so far. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population standard deviation; 0 when empty. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Convenience alias for percentile(50). */
    double median() const { return percentile(50.0); }

    /** The raw samples, in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;

    void ensureSorted() const;
};

/** A fixed-width-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bin
     * @param hi exclusive upper bound of the last bin
     * @param bins number of equal-width bins (>= 1)
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample; out-of-range samples clamp to the edge bins. */
    void add(double value);

    /** Count in bin @p idx. */
    uint64_t binCount(size_t idx) const { return counts_.at(idx); }

    /** Number of bins. */
    size_t binCount() const = delete;

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of bin @p idx. */
    double binLow(size_t idx) const;

    /** Total samples added. */
    uint64_t total() const { return total_; }

    /** Render a terminal bar chart, one line per bin. */
    std::string render(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Log-bucketed latency histogram safe for concurrent add() from many
 * threads: every bucket is an atomic counter, so recording a sample is a
 * single relaxed fetch-add with no lock. Bucket edges grow geometrically
 * (bucket i covers [min*growth^i, min*growth^(i+1))), which keeps the
 * relative quantile error bounded by the growth factor across the whole
 * microseconds-to-minutes range the leaf server sees.
 *
 * Histograms with the same layout (min, growth, bucket count) merge, so
 * per-worker histograms can be combined into a fleet view.
 */
class LatencyHistogram
{
  public:
    /**
     * @param min_value inclusive upper edge of the first bucket's lower
     *        bound; samples below it land in bucket 0
     * @param growth per-bucket geometric growth factor (> 1)
     * @param buckets number of buckets (>= 2); samples above the last
     *        edge clamp into the final bucket
     *
     * The defaults span ~10 us to ~1.9e4 s with <= 25% relative error.
     */
    explicit LatencyHistogram(double min_value = 1e-5,
                              double growth = 1.25, size_t buckets = 96);

    /** Deep copies load the atomics; safe concurrently with add(). */
    LatencyHistogram(const LatencyHistogram &other);
    LatencyHistogram &operator=(const LatencyHistogram &other);

    /** Record one sample. Thread-safe and lock-free. */
    void add(double value);

    /**
     * Fold @p other's counts into this histogram. Both must share the
     * same layout (min, growth, buckets); fatal otherwise.
     */
    void merge(const LatencyHistogram &other);

    /** Total samples recorded. */
    uint64_t count() const;

    /** Sum of all recorded samples (exact, not bucket-estimated). */
    double sum() const;

    /** Mean of recorded samples; 0 when empty. */
    double mean() const;

    /**
     * Quantile estimate: the upper edge of the bucket holding the q-th
     * sample, so estimates are conservative and monotone in @p q.
     * @param q quantile in [0, 1]; 0 when empty.
     */
    double quantile(double q) const;

    /** Convenience aliases for the tail the experiments report. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** Number of buckets. */
    size_t buckets() const { return counts_.size(); }

    /** Count in bucket @p idx. */
    uint64_t bucketCount(size_t idx) const;

    /** Inclusive lower edge of bucket @p idx, in the sample's unit. */
    double bucketLow(size_t idx) const;

    /** True when the layouts (min, growth, buckets) match. */
    bool sameLayout(const LatencyHistogram &other) const;

  private:
    double minValue_;
    double growth_;
    double invLogGrowth_; ///< cached 1/log(growth) for bucket lookup
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<uint64_t> total_;
    std::atomic<double> sum_;

    size_t bucketIndex(double value) const;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 when either series is constant or the lengths differ.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace sirius

#endif // SIRIUS_COMMON_STATS_H
