#include "core/pipeline_cache.h"

#include "common/strings.h"

namespace sirius::core {

CacheKey128
answerCacheKey(const std::string &question)
{
    const std::string normalized = join(split(toLower(question)));
    return mixKey(hashBytes128(normalized.data(), normalized.size()),
                  normalized.size());
}

size_t
answerCacheBytes(const CachedAnswer &answer)
{
    return answer.answer.size() + sizeof(CachedAnswer) + 64;
}

CacheStats
PipelineCacheSnapshot::total() const
{
    CacheStats out = acousticScores;
    out.merge(answers);
    out.merge(matches);
    return out;
}

PipelineCaches::PipelineCaches(const CacheConfig &config)
    : acousticScores_(config, "acoustic_scores"),
      answers_(config, "answers"), matches_(config, "matches")
{
}

PipelineCacheSnapshot
PipelineCaches::snapshot() const
{
    PipelineCacheSnapshot out;
    out.acousticScores = acousticScores_.stats();
    out.answers = answers_.stats();
    out.matches = matches_.stats();
    return out;
}

void
PipelineCaches::exportTo(MetricsRegistry &registry) const
{
    acousticScores_.exportTo(registry);
    answers_.exportTo(registry);
    matches_.exportTo(registry);
}

void
PipelineCaches::clear()
{
    acousticScores_.clear();
    answers_.clear();
    matches_.clear();
}

} // namespace sirius::core
