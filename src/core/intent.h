/**
 * @file
 * Device-action intent parsing: Figure 2's "Execute Action" box.
 *
 * When the query classifier routes a transcript to the device, the
 * mobile side still needs structure: which action, with which
 * arguments. This parser turns command transcripts into typed intents
 * with extracted slots (time, contact, item, app, ...), using the same
 * regex substrate as the rest of the NLP stack.
 */

#ifndef SIRIUS_CORE_INTENT_H
#define SIRIUS_CORE_INTENT_H

#include <map>
#include <string>
#include <vector>

#include "nlp/regex.h"

namespace sirius::core {

/** Action families covered by the voice-command input set. */
enum class IntentKind
{
    SetAlarm,
    Call,
    SendMessage,
    PlayMusic,
    StopMusic,
    OpenApp,
    ToggleDevice,
    Remind,
    StartTimer,
    TakePicture,
    AdjustVolume,
    Navigate,
    AddToList,
    ShowCalendar,
    MuteNotifications,
    ReadMessages,
    Unknown,
};

/** Stable intent name for logs and tests. */
const char *intentKindName(IntentKind kind);

/** A parsed device action. */
struct Intent
{
    IntentKind kind = IntentKind::Unknown;
    /** Extracted arguments, e.g. {"time": "8 am"}, {"contact": "john"}. */
    std::map<std::string, std::string> slots;
    std::string raw; ///< the original transcript
};

/** Rule-based intent parser over command transcripts. */
class IntentParser
{
  public:
    IntentParser();

    /** Parse a (lower-case) command transcript. */
    Intent parse(const std::string &transcript) const;

  private:
    struct Rule
    {
        IntentKind kind;
        nlp::Regex trigger;
        /** slot name -> regex whose leftmost match fills the slot. */
        std::vector<std::pair<std::string, nlp::Regex>> slotPatterns;
    };

    std::vector<Rule> rules_;

    static std::string firstMatch(const nlp::Regex &pattern,
                                  const std::string &text);
};

} // namespace sirius::core

#endif // SIRIUS_CORE_INTENT_H
