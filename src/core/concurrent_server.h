/**
 * @file
 * Concurrent leaf server: the Sirius pipeline behind a bounded request
 * queue and a worker pool, with admission control, graceful drain, and
 * race-free statistics snapshots.
 *
 * This is the server shape the paper's Section-3 analysis assumes: a
 * leaf node absorbing a request stream whose latency is queueing plus
 * service. Where core::loadTest() replays *measured* service times
 * through a virtual-time Lindley recursion, the load generators here
 * drive *real* pipeline executions through real threads, so the
 * Figure-17 queueing predictions can be validated against measurement.
 */

#ifndef SIRIUS_CORE_CONCURRENT_SERVER_H
#define SIRIUS_CORE_CONCURRENT_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/cache.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/slo.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/batch_scheduler.h"
#include "core/pipeline_cache.h"
#include "core/server.h"

namespace sirius::core {

/** Sizing and robustness policy of a ConcurrentServer. */
struct ConcurrentServerConfig
{
    size_t workers = 4;        ///< pipeline executions in flight at once
    size_t queueCapacity = 64; ///< waiting requests before shedding

    /**
     * Per-query latency budget, measured from admission (so queueing
     * time counts against it); 0 disables the deadline. Overdue queries
     * degrade along the VIQ→VQ→VC ladder or complete near-free instead
     * of holding the queue hostage.
     */
    double deadlineSeconds = 0.0;
    RetryPolicy retry;          ///< per-stage retry/backoff policy
    /** Optional fault injector, shared by all workers; not owned. */
    FaultInjector *faults = nullptr;

    /**
     * Fraction of queries traced, in [0, 1]; 0 (the default) disables
     * tracing entirely. The keep/drop decision is head-based — made
     * once at admission from (traceSeed, trace id) — so a kept query
     * records all of its spans and a dropped one costs a thread-local
     * read per instrumented region.
     */
    double traceSampleRate = 0.0;
    uint64_t traceSeed = 0xC011EC70ULL; ///< sampling-hash seed
    size_t traceCapacity = 4096;        ///< span ring size

    /**
     * Cross-query micro-batching of the dominant kernels (acoustic
     * scoring, IMM matching). Enabled by default — batched results are
     * bitwise-identical to serial ones, so this only changes *when*
     * kernels run, never what they produce. Set enabled = false
     * (--no-batching) to measure the unbatched baseline.
     */
    BatchConfig batching;
    /**
     * Per-layer result caching (acoustic scores, QA answers, image
     * matches). Disabled by default: caching changes *which* requests
     * pay for computation, so baselines and robustness experiments stay
     * cache-free unless a run opts in (--cache in the load generators).
     * Keys are exact-content hashes, so enabling it never changes any
     * individual query's result (see docs/CACHING.md).
     */
    CacheConfig cache;
    /**
     * Added to every trace id (which otherwise starts at 1 per
     * server), so traces from several servers can share one JSONL file
     * without id collisions.
     */
    uint64_t traceIdOffset = 0;

    /**
     * Optional SLO tracker fed one observation per completed query
     * (latency = admission to completion, good = not Failed); not
     * owned. Leave null on cluster shards — the router records at the
     * fleet level instead, so leg outcomes are not double-counted.
     */
    SloTracker *slo = nullptr;
    /**
     * Optional flight recorder; not owned. When set, sampled queries
     * buffer their spans and offer the whole trace to the recorder on
     * completion (as a leg contribution when the query carries an
     * external TraceBinding, i.e. a cluster router owns the trace).
     */
    FlightRecorder *flight = nullptr;

    /**
     * Virtual clock for deterministic tests; null = wall clock. When
     * set, per-query deadlines are armed with Deadline::afterManual and
     * the admitted/dispatched/total timestamps read this clock, so a
     * test can advance time explicitly (e.g. to expire a deadline)
     * without sleeping. Must outlive the server.
     */
    const ManualTime *clock = nullptr;
};

/** Race-free snapshot of a ConcurrentServer's statistics. */
struct ConcurrentServerStats
{
    ServerStats server;    ///< same shape as the sequential server's
    uint64_t accepted = 0; ///< requests admitted to the queue
    uint64_t rejected = 0; ///< requests shed by admission control

    /**
     * Every number above re-expressed as labeled metrics (plus the
     * profiler's per-component attribution and the admission counters),
     * ready for renderPrometheus()/renderCsv().
     */
    MetricsRegistry metrics;
    /** The newest retained spans (empty when tracing is disabled). */
    std::vector<SpanRecord> spans;
    /** Batch-queue accounting (all zeros when batching is disabled). */
    BatchSnapshot batching;
    /** Per-layer cache accounting (all zeros when caching is disabled). */
    PipelineCacheSnapshot caches;
    /** Spans lost to the trace ring bound (sirius_trace_dropped_total). */
    uint64_t traceDropped = 0;
    /** SLO state (empty when config.slo is null). */
    SloSnapshot slo;
    /** Flight-recorder accounting (zeros when config.flight is null). */
    FlightRecorderStats flight;
};

/**
 * A leaf node executing Sirius queries on a pool of workers.
 *
 * Requests are admitted into a bounded queue (submit() returns false and
 * counts a rejection when it is full — the shed-don't-collapse policy a
 * WSC leaf needs), executed by `workers` threads in parallel, and
 * recorded into shared statistics. drain() blocks until every admitted
 * request has completed; destruction drains implicitly, so no accepted
 * request is ever lost.
 */
class ConcurrentServer
{
  public:
    /** Completion callback; runs on the worker that served the query. */
    using Completion = std::function<void(const SiriusResult &)>;

    /** @param pipeline trained pipeline; must outlive the server. */
    explicit ConcurrentServer(const SiriusPipeline &pipeline,
                              ConcurrentServerConfig config = {});

    ConcurrentServer(const ConcurrentServer &) = delete;
    ConcurrentServer &operator=(const ConcurrentServer &) = delete;

    /** Drains outstanding requests, then stops the workers. */
    ~ConcurrentServer();

    /**
     * Admit @p query for asynchronous execution.
     * @param done invoked with the result on a worker thread; may be null
     * @return false (and a counted rejection) when the queue is full
     */
    bool submit(const Query &query, Completion done = nullptr);

    /**
     * submit() with an external trace identity: a cluster router passes
     * its own trace id, a per-leg span-id base, and the route-leg span
     * the shard's root should nest under, so every leg's spans stitch
     * into one trace (see TraceBinding). A default binding behaves
     * exactly like submit().
     */
    bool submit(const Query &query, const TraceBinding &binding,
                Completion done = nullptr);

    /**
     * Closed-loop path: block until @p query has been executed by a
     * worker and return its result. Waits for queue space instead of
     * shedding, so it never counts rejections.
     */
    SiriusResult handle(const Query &query);

    /** Block until every admitted request has completed. */
    void drain();

    /** Copy of the statistics, consistent under concurrent traffic. */
    ConcurrentServerStats snapshot() const;

    /**
     * Mean service rate over completed requests, queries/s per worker
     * (0 until something has been served). Multiply by workerCount()
     * for the node's aggregate capacity upper bound.
     */
    double serviceRate() const;

    /** Per-stage wall-time attribution across all workers. */
    const Profiler &profiler() const { return profiler_; }

    /** The span ring all sampled queries record into. */
    const TraceCollector &traces() const { return collector_; }

    /**
     * Put this server's span timestamps on @p other's clock (cluster
     * stitching: every shard aligns to the router's collector). Call
     * before traffic; existing span timestamps are not rewritten.
     */
    void alignTraceEpoch(const TraceCollector &other)
    {
        collector_.alignEpochTo(other);
    }

    /** The shared micro-batcher; null when batching is disabled. */
    const BatchScheduler *batcher() const { return batcher_.get(); }

    /**
     * Clock-mode batch pump: close every partial batch whose window
     * has expired on the injected virtual clock. In clock mode the
     * scheduler thread never arms wall-time wake-ups, so a driver that
     * advances the clock must call this (or queries sitting in partial
     * batches would wait forever). No-op when batching is disabled or
     * running on the wall clock.
     */
    void
    pollBatches()
    {
        if (batcher_ != nullptr && config_.clock != nullptr)
            batcher_->flushTimedOut();
    }

    /** The shared per-layer caches; null when caching is disabled. */
    const PipelineCaches *caches() const { return caches_.get(); }

    /**
     * Export the server's statistics into @p registry under @p base
     * labels — the same mapping snapshot().metrics uses, for callers
     * that aggregate several servers into one registry.
     */
    void exportMetrics(MetricsRegistry &registry,
                       const MetricLabels &base = {{"server",
                                                    "leaf"}}) const;

    size_t workerCount() const { return pool_.workerCount(); }
    size_t queueCapacity() const { return config_.queueCapacity; }

  private:
    void serve(const Query &query, const Deadline &deadline,
               TraceContext trace, double admitted_seconds,
               bool own_trace, const Completion &done);

    /** Seconds on the active clock: ConcurrentServerConfig::clock when
     *  set, otherwise the trace collector's wall epoch. */
    double nowSeconds() const
    {
        return config_.clock != nullptr ? config_.clock->now()
                                        : collector_.nowSeconds();
    }

    const SiriusPipeline &pipeline_;
    ConcurrentServerConfig config_;

    std::atomic<size_t> queued_{0};      ///< admitted, not yet executing
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};

    mutable std::mutex statsMutex_; ///< guards stats_ scalars + samples
    ServerStats stats_;
    Profiler profiler_;
    TraceCollector collector_;

    /**
     * Declared before pool_ so the workers (which may be blocked on
     * batch futures) stop before the scheduler that resolves them dies.
     */
    std::unique_ptr<BatchScheduler> batcher_;

    /** Declared before pool_: workers probe the caches while serving. */
    std::unique_ptr<PipelineCaches> caches_;

    ThreadPool pool_; ///< last member: workers stop before state dies
};

/** Result of a load-generation run against a ConcurrentServer. */
struct MeasuredLoadResult
{
    double offeredQps = 0.0;    ///< open loop: target arrival rate
    uint64_t offered = 0;       ///< requests generated
    uint64_t completed = 0;     ///< requests served to completion
    uint64_t rejected = 0;      ///< requests shed at admission
    uint64_t degraded = 0;      ///< served with >= 1 stage shed
    uint64_t deadlineMisses = 0;///< completed past their deadline
    double elapsedSeconds = 0.0;
    double achievedQps = 0.0;   ///< completed / elapsed
    SampleStats sojournSeconds; ///< submit-to-completion per request
};

/**
 * Open-loop load generator: Poisson arrivals at @p offered_qps in real
 * time, each arrival submitted to the server regardless of how many are
 * outstanding (the WSC traffic model behind Figure 17). Queries cycle
 * round robin through the standard query set. Sojourn time spans
 * submission to completion, i.e. queueing plus service — directly
 * comparable to dcsim::mm1Latency at the same load.
 *
 * @p zipf_skew > 0 replaces the round-robin query selection with
 * Zipf(zipf_skew)-distributed draws over the standard set (popular
 * queries dominate, the realistic regime for result caches); 0 keeps
 * the round-robin default. The query draw uses its own RNG stream, so
 * the Poisson arrival process is unchanged at equal seeds.
 */
MeasuredLoadResult runOpenLoop(ConcurrentServer &server,
                               double offered_qps, size_t requests,
                               uint64_t seed = 31337,
                               double zipf_skew = 0.0);

/**
 * Closed-loop load generator: @p clients threads each issue
 * @p queries_per_client standard-set queries back to back, waiting for
 * every response before sending the next (think: one blocking session
 * per user). Sojourn equals service plus any queue wait behind other
 * clients; offeredQps is 0 because a closed loop has no fixed rate.
 *
 * @p zipf_skew > 0 replaces each client's round-robin query selection
 * with Zipf(zipf_skew)-distributed draws over the standard set (seeded
 * per client from @p seed, so runs are reproducible); 0 keeps the
 * round-robin default.
 */
MeasuredLoadResult runClosedLoop(ConcurrentServer &server, size_t clients,
                                 size_t queries_per_client,
                                 double zipf_skew = 0.0,
                                 uint64_t seed = 424242);

} // namespace sirius::core

#endif // SIRIUS_CORE_CONCURRENT_SERVER_H
