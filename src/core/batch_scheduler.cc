#include "core/batch_scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"

namespace sirius::core {

namespace {

BatchConfig
sanitize(BatchConfig config)
{
    config.maxBatchSize = std::max<size_t>(1, config.maxBatchSize);
    config.maxWaitSeconds = std::max(0.0, config.maxWaitSeconds);
    return config;
}

std::chrono::steady_clock::duration
toDuration(double seconds)
{
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

} // namespace

const char *
flushReasonName(FlushReason reason)
{
    switch (reason) {
      case FlushReason::Size: return "size";
      case FlushReason::Timeout: return "timeout";
      case FlushReason::Deadline: return "deadline";
      case FlushReason::Shutdown: return "shutdown";
    }
    return "?";
}

const char *
batchKernelName(BatchKernel kernel)
{
    switch (kernel) {
      case BatchKernel::Score: return "score";
      case BatchKernel::Match: return "match";
    }
    return "?";
}

void
BatchSnapshot::exportTo(MetricsRegistry &registry) const
{
    for (size_t k = 0; k < kBatchKernels; ++k) {
        const auto kernel = static_cast<BatchKernel>(k);
        const char *kernel_name = batchKernelName(kernel);
        const BatchKernelSnapshot &snap = kernels[k];
        for (int r = 0; r < 4; ++r) {
            registry
                .counter("sirius_batch_flushes_total",
                         {{"kernel", kernel_name},
                          {"reason",
                           flushReasonName(static_cast<FlushReason>(r))}})
                .add(snap.flushes[r]);
        }
        registry
            .counter("sirius_batch_items_total", {{"kernel", kernel_name}})
            .add(snap.items);
        registry
            .gauge("sirius_batch_mean_occupancy",
                   {{"kernel", kernel_name}})
            .set(snap.meanOccupancy());
        registry
            .histogram("sirius_batch_wait_seconds",
                       {{"kernel", kernel_name}})
            .merge(snap.waitSeconds);
    }
}

BatchScheduler::BatchScheduler(const speech::AcousticScorer *scorer,
                               const vision::ImmService *imm,
                               BatchConfig config)
    : scorer_(scorer), imm_(imm), config_(sanitize(config))
{
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

BatchScheduler::~BatchScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    scheduler_.join();

    // Drain leftovers so no enqueuer blocks on a dead scheduler. The
    // server destroys its worker pool first, so normally both queues
    // are already empty here.
    std::vector<ScoreItem> score_batch;
    std::vector<MatchItem> match_batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        score_batch.swap(scoreQueue_.pending);
        match_batch.swap(matchQueue_.pending);
    }
    if (!score_batch.empty())
        executeScoreBatch(std::move(score_batch), FlushReason::Shutdown);
    if (!match_batch.empty())
        executeMatchBatch(std::move(match_batch), FlushReason::Shutdown);
}

double
BatchScheduler::nowSeconds() const
{
    if (config_.clock != nullptr)
        return config_.clock->now();
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

template <typename ItemT>
bool
BatchScheduler::enqueue(Queue<ItemT> &queue, ItemT &&item,
                        std::vector<ItemT> &batch, FlushReason &reason)
{
    const bool rush = item.deadline.bounded() &&
        item.deadline.remainingSeconds() <= config_.deadlineSlackSeconds;
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue.pending.empty())
        queue.oldestSeconds = item.enqueuedSeconds;
    queue.pending.push_back(std::move(item));
    if (queue.pending.size() >= config_.maxBatchSize) {
        batch.swap(queue.pending);
        reason = FlushReason::Size;
        return true;
    }
    if (rush) {
        // This item cannot afford a batching window: close the batch
        // now and let its enqueuer lead, taking whatever co-riders are
        // already waiting along for free.
        batch.swap(queue.pending);
        reason = FlushReason::Deadline;
        return true;
    }
    // Partial batch: arm (or re-arm) the scheduler thread's timeout.
    cv_.notify_one();
    return false;
}

speech::FrameScoreBatcher::Outcome
BatchScheduler::scoreFrames(const std::vector<audio::FeatureVector> &frames,
                            const Deadline &deadline)
{
    ScoreItem item;
    item.frames = &frames;
    item.deadline = deadline;
    item.enqueuedSeconds = nowSeconds();
    auto future = item.promise.get_future();

    std::vector<ScoreItem> batch;
    FlushReason reason = FlushReason::Size;
    if (enqueue(scoreQueue_, std::move(item), batch, reason))
        executeScoreBatch(std::move(batch), reason);
    return future.get();
}

vision::DescriptorMatchBatcher::Outcome
BatchScheduler::matchAgainstDatabase(
    const std::vector<vision::Descriptor> &descriptors,
    const Deadline &deadline)
{
    MatchItem item;
    item.descriptors = &descriptors;
    item.deadline = deadline;
    item.enqueuedSeconds = nowSeconds();
    auto future = item.promise.get_future();

    std::vector<MatchItem> batch;
    FlushReason reason = FlushReason::Size;
    if (enqueue(matchQueue_, std::move(item), batch, reason))
        executeMatchBatch(std::move(batch), reason);
    return future.get();
}

void
BatchScheduler::flushTimedOut()
{
    const double now = nowSeconds();
    std::unique_lock<std::mutex> lock(mutex_);
    if (!scoreQueue_.pending.empty() &&
        now - scoreQueue_.oldestSeconds >= config_.maxWaitSeconds) {
        std::vector<ScoreItem> batch;
        batch.swap(scoreQueue_.pending);
        lock.unlock();
        executeScoreBatch(std::move(batch), FlushReason::Timeout);
        lock.lock();
    }
    if (!matchQueue_.pending.empty() &&
        now - matchQueue_.oldestSeconds >= config_.maxWaitSeconds) {
        std::vector<MatchItem> batch;
        batch.swap(matchQueue_.pending);
        lock.unlock();
        executeMatchBatch(std::move(batch), FlushReason::Timeout);
        lock.lock();
    }
}

void
BatchScheduler::schedulerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Clock mode: wall-time wake-ups would be meaningless; overdue
    // partial batches are closed by external flushTimedOut() calls.
    if (config_.clock != nullptr) {
        while (!stop_)
            cv_.wait(lock);
        return;
    }
    while (!stop_) {
        // Arm a wake-up at the oldest pending item's timeout, if any.
        bool armed = false;
        double next = 0.0;
        const auto consider = [&](const auto &queue) {
            if (queue.pending.empty())
                return;
            const double due =
                queue.oldestSeconds + config_.maxWaitSeconds;
            if (!armed || due < next) {
                next = due;
                armed = true;
            }
        };
        consider(scoreQueue_);
        consider(matchQueue_);

        if (!armed) {
            cv_.wait(lock);
            continue;
        }
        cv_.wait_until(lock, epoch_ + toDuration(next));
        if (stop_)
            break;

        // Flush every queue whose oldest item is past its window. The
        // leaders for size/deadline flushes run on worker threads; only
        // these timeout flushes execute here, so a lone query's extra
        // latency is bounded by maxWaitSeconds without serializing the
        // kernels through this thread under load.
        const double now = nowSeconds();
        if (!scoreQueue_.pending.empty() &&
            now - scoreQueue_.oldestSeconds >= config_.maxWaitSeconds) {
            std::vector<ScoreItem> batch;
            batch.swap(scoreQueue_.pending);
            lock.unlock();
            executeScoreBatch(std::move(batch), FlushReason::Timeout);
            lock.lock();
        }
        if (!matchQueue_.pending.empty() &&
            now - matchQueue_.oldestSeconds >= config_.maxWaitSeconds) {
            std::vector<MatchItem> batch;
            batch.swap(matchQueue_.pending);
            lock.unlock();
            executeMatchBatch(std::move(batch), FlushReason::Timeout);
            lock.lock();
        }
    }
}

void
BatchScheduler::executeScoreBatch(std::vector<ScoreItem> batch,
                                  FlushReason reason)
{
    if (scorer_ == nullptr)
        fatal("BatchScheduler: score batch without an AcousticScorer");

    // The leader's query context (if any) records the batch execution;
    // from the scheduler thread the span is inert.
    Span span("batch_execute", SpanKind::Kernel);
    span.attr("kernel", "score");
    span.attr("batch_size", std::to_string(batch.size()));
    span.attr("flush_reason", flushReasonName(reason));

    const double exec_start = nowSeconds();

    // Gather frames of every still-live item into one flat batch; an
    // item already past its deadline comes back cutShort unscored, the
    // same "abandon the decode" outcome the serial path reaches.
    struct Slice
    {
        size_t offset = 0;
        size_t count = 0;
        bool expired = false;
    };
    std::vector<Slice> slices(batch.size());
    std::vector<const audio::FeatureVector *> flat;
    for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].deadline.expired()) {
            slices[i].expired = true;
            continue;
        }
        slices[i].offset = flat.size();
        slices[i].count = batch[i].frames->size();
        for (const auto &frame : *batch[i].frames)
            flat.push_back(&frame);
    }

    std::vector<std::vector<float>> scores;
    if (!flat.empty())
        scores = scorer_->scoreBatch(flat);

    // Account for the batch BEFORE resolving any promise: the moment a
    // waiter wakes, its query can complete and a snapshot() taken then
    // must already include this batch.
    std::vector<double> waits(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        waits[i] = exec_start - batch[i].enqueuedSeconds;
    recordBatch(BatchKernel::Score, reason, batch.size(), waits);

    for (size_t i = 0; i < batch.size(); ++i) {
        speech::FrameScoreBatcher::Outcome outcome;
        outcome.batchSize = batch.size();
        outcome.flushReason = flushReasonName(reason);
        if (slices[i].expired) {
            outcome.cutShort = true;
        } else {
            outcome.scores.reserve(slices[i].count);
            for (size_t f = 0; f < slices[i].count; ++f)
                outcome.scores.push_back(
                    std::move(scores[slices[i].offset + f]));
        }
        batch[i].promise.set_value(std::move(outcome));
    }
}

void
BatchScheduler::executeMatchBatch(std::vector<MatchItem> batch,
                                  FlushReason reason)
{
    if (imm_ == nullptr)
        fatal("BatchScheduler: match batch without an ImmService");

    Span span("batch_execute", SpanKind::Kernel);
    span.attr("kernel", "match");
    span.attr("batch_size", std::to_string(batch.size()));
    span.attr("flush_reason", flushReasonName(reason));

    const double exec_start = nowSeconds();

    std::vector<const std::vector<vision::Descriptor> *> queries;
    std::vector<Deadline> deadlines;
    queries.reserve(batch.size());
    deadlines.reserve(batch.size());
    for (const auto &item : batch) {
        queries.push_back(item.descriptors);
        deadlines.push_back(item.deadline);
    }
    // matchDatabaseBatch does its own per-item deadline bookkeeping
    // (best-so-far stands, cutShort on expiry), mirroring the serial
    // entry loop exactly.
    auto outcomes = imm_->matchDatabaseBatch(queries, deadlines);

    // Accounting first, scatter second — see executeScoreBatch.
    std::vector<double> waits(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        waits[i] = exec_start - batch[i].enqueuedSeconds;
    recordBatch(BatchKernel::Match, reason, batch.size(), waits);

    for (size_t i = 0; i < batch.size(); ++i) {
        vision::DescriptorMatchBatcher::Outcome outcome;
        outcome.match = outcomes[i];
        outcome.batchSize = batch.size();
        outcome.flushReason = flushReasonName(reason);
        batch[i].promise.set_value(std::move(outcome));
    }
}

void
BatchScheduler::recordBatch(BatchKernel kernel, FlushReason reason,
                            size_t batch_items,
                            const std::vector<double> &wait_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    BatchKernelSnapshot &stats = stats_[static_cast<size_t>(kernel)];
    stats.batches += 1;
    stats.items += batch_items;
    stats.flushes[static_cast<size_t>(reason)] += 1;
    for (double wait : wait_seconds)
        stats.waitSeconds.add(wait);
}

size_t
BatchScheduler::pendingItems(BatchKernel kernel) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return kernel == BatchKernel::Score ? scoreQueue_.pending.size()
                                        : matchQueue_.pending.size();
}

BatchSnapshot
BatchScheduler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    BatchSnapshot snap;
    for (size_t k = 0; k < kBatchKernels; ++k)
        snap.kernels[k] = stats_[k];
    return snap;
}

} // namespace sirius::core
