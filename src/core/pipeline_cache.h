/**
 * @file
 * PipelineCaches: the server-owned bundle of per-layer result caches
 * (docs/CACHING.md).
 *
 * One CacheConfig fans out into three ShardedLruCache instances, one
 * per layer of the pipeline:
 *  - `acoustic_scores` (speech): feature-frame hash -> per-state score
 *    vector, probed inside AsrService::transcribe;
 *  - `answers` (qa): normalized question text -> QA answer, probed in
 *    the pipeline after ASR so voice and typed paths share entries;
 *  - `matches` (vision): image content hash -> match outcome, probed
 *    inside ImmService::match.
 *
 * The bundle lives in core/ because only the server sees all three
 * layers at once; speech/ and vision/ receive their cache by pointer
 * (like the batching hooks) and stay free of core/ dependencies.
 */

#ifndef SIRIUS_CORE_PIPELINE_CACHE_H
#define SIRIUS_CORE_PIPELINE_CACHE_H

#include <string>

#include "common/cache.h"
#include "speech/score_cache.h"
#include "vision/match_cache.h"

namespace sirius::core {

/** The reusable part of a QA answer (timings are per-execution). */
struct CachedAnswer
{
    std::string answer;
    double confidence = 0.0;
};

/** Normalized-question key -> answer. */
using AnswerCache = ShardedLruCache<CacheKey128, CachedAnswer>;

/**
 * Content key of one QA question: case- and whitespace-normalized so
 * "WHO wrote  hamlet" and "who wrote hamlet" share an entry. Keyed on
 * the *augmented* question (after IMM landmark substitution), so two
 * VIQ queries only share an answer when they resolved to the same
 * landmark.
 */
CacheKey128 answerCacheKey(const std::string &question);

/** Declared byte cost of one cached answer. */
size_t answerCacheBytes(const CachedAnswer &answer);

/** Point-in-time counters of all three caches. */
struct PipelineCacheSnapshot
{
    CacheStats acousticScores;
    CacheStats answers;
    CacheStats matches;

    /** All three layers folded together. */
    CacheStats total() const;
};

/** The three per-layer caches a server threads through its pipeline. */
class PipelineCaches
{
  public:
    /** All three caches share @p config (budget is per cache). */
    explicit PipelineCaches(const CacheConfig &config);

    speech::AcousticScoreCache &acousticScores() { return acousticScores_; }
    AnswerCache &answers() { return answers_; }
    vision::MatchCache &matches() { return matches_; }

    PipelineCacheSnapshot snapshot() const;

    /** Export all three caches' sirius_cache_* metrics. */
    void exportTo(MetricsRegistry &registry) const;

    /** Drop every entry in every layer (counters are kept). */
    void clear();

  private:
    speech::AcousticScoreCache acousticScores_;
    AnswerCache answers_;
    vision::MatchCache matches_;
};

} // namespace sirius::core

#endif // SIRIUS_CORE_PIPELINE_CACHE_H
