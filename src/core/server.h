/**
 * @file
 * Leaf-server front end: the Sirius pipeline behind a request interface
 * with service statistics, plus an open-loop load-test harness that
 * replays Poisson arrivals against *measured* per-query service times
 * (virtual-time Lindley recursion) — connecting the real pipeline to the
 * Figure-17 queueing analysis.
 */

#ifndef SIRIUS_CORE_SERVER_H
#define SIRIUS_CORE_SERVER_H

#include <array>
#include <cstdint>

#include "common/metrics.h"
#include "common/stats.h"
#include "core/pipeline.h"

namespace sirius::core {

/** Aggregate service statistics of a Sirius leaf server. */
struct ServerStats
{
    uint64_t served = 0;
    uint64_t actions = 0;   ///< VC pathway outcomes
    uint64_t answers = 0;   ///< VQ / VIQ pathway outcomes
    SampleStats serviceSeconds; ///< per-request processing time

    // Robustness outcomes (all zero without a deadline/fault policy).
    uint64_t degraded = 0;       ///< shed >= 1 stage, still delivered
    uint64_t failed = 0;         ///< lost ASR: nothing delivered
    uint64_t deadlineMisses = 0; ///< finished past their deadline
    uint64_t stageRetries = 0;   ///< stage retry attempts, all queries

    /**
     * Queries per Degradation rung, indexed by the enum: the shape of
     * the VIQ→VQ→VC ladder under the current load and fault regime.
     */
    std::array<uint64_t, kDegradationLevels> degradationCounts{};

    /** End-to-end service-time distribution (log-bucketed). */
    LatencyHistogram serviceHistogram;
    /** Per-stage distributions, fed from each result's StageTimings. */
    LatencyHistogram asrSeconds;
    LatencyHistogram qaSeconds;
    LatencyHistogram immSeconds;
    /**
     * Service-time distribution of degraded queries only: compare with
     * serviceHistogram to see what shedding bought.
     */
    LatencyHistogram degradedSeconds;
    /**
     * Admission-to-dispatch wait, recorded by the concurrent server.
     * Without it, queue delay is indistinguishable from service time in
     * reports — it is only implicitly burned out of the deadline
     * budget. Always empty for the sequential SiriusServer (no queue).
     */
    LatencyHistogram queueWaitSeconds;

    /** Fold one served result into every counter and histogram. */
    void record(const SiriusResult &result, double service_seconds);

    /** Record one admission-to-dispatch queue wait. */
    void recordQueueWait(double wait_seconds);

    /** Fold another server's statistics into this one (fleet view). */
    void merge(const ServerStats &other);

    /**
     * Export every counter and histogram into @p registry under the
     * metric names documented in docs/ARCHITECTURE.md
     * (`sirius_queries_total{outcome=...}`,
     * `sirius_stage_seconds{stage=...}`, ...). @p base labels are
     * attached to every exported instance (e.g. `server=leaf0`).
     */
    void exportTo(MetricsRegistry &registry,
                  const MetricLabels &base = {{"server", "leaf"}}) const;
};

/** A single leaf node serving Sirius queries. */
class SiriusServer
{
  public:
    /** @param pipeline trained pipeline; must outlive the server. */
    explicit SiriusServer(const SiriusPipeline &pipeline);

    /** Serve one query, updating the statistics. */
    SiriusResult handle(const Query &query);

    /** Serve one query under a robustness policy (deadline/retry/faults). */
    SiriusResult handle(const Query &query,
                        const ProcessOptions &options);

    /** Statistics since construction. */
    const ServerStats &stats() const { return stats_; }

    /** Measured mean service rate, queries/s (0 until served). */
    double serviceRate() const;

  private:
    const SiriusPipeline &pipeline_;
    ServerStats stats_;
};

/** Result of an open-loop load test. */
struct LoadTestResult
{
    double offeredQps = 0.0;
    double utilization = 0.0;
    SampleStats sojournSeconds; ///< queueing + service per request
};

/**
 * Open-loop load test: Poisson arrivals at @p offered_qps, service times
 * replayed from the server's real measured per-query times for the
 * standard query set (round robin), queue evolution by the Lindley
 * recursion in virtual time.
 * @param requests number of simulated requests
 */
LoadTestResult loadTest(SiriusServer &server, double offered_qps,
                        size_t requests = 5000, uint64_t seed = 31337);

} // namespace sirius::core

#endif // SIRIUS_CORE_SERVER_H
