#include "core/shard_health.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace sirius::core {

ShardHealthTracker::ShardHealthTracker(size_t index,
                                       const ClusterHealthConfig &health,
                                       EventLog *events)
    : index_(index), health_(health), events_(events),
      window_(std::max<size_t>(health.window, 1), 0)
{
}

void
ShardHealthTracker::recordOutcome(bool bad, double now_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Outcomes of queries already in flight when the shard was ejected
    // must not re-judge it (they would re-eject an empty window).
    if (ejected_)
        return;
    if (filled_ == window_.size())
        bad_ -= window_[head_];
    else
        ++filled_;
    window_[head_] = bad ? 1 : 0;
    bad_ += bad ? 1 : 0;
    head_ = (head_ + 1) % window_.size();
    if (filled_ >= health_.minSamples &&
        static_cast<double>(bad_) / static_cast<double>(filled_) >
            health_.ejectBadRate) {
        ejected_ = true;
        ejectedFlag_.store(true, std::memory_order_relaxed);
        ejectedAt_ = now_seconds;
        ejections_.fetch_add(1, std::memory_order_relaxed);
        probeSuccesses_ = 0;
        probeInFlight_ = false;
        // A fresh window for the post-recovery era: the outcomes that
        // got the shard ejected must not get it re-ejected instantly.
        std::fill(window_.begin(), window_.end(), 0);
        filled_ = 0;
        bad_ = 0;
        head_ = 0;
        logMessage(LogLevel::Warn,
                   "cluster: shard " + std::to_string(index_) +
                       " ejected (bad-outcome rate over threshold)");
        if (events_ != nullptr)
            events_->note(now_seconds, "shard_eject",
                          "shard " + std::to_string(index_) +
                              " ejected from routing",
                          {{"shard", std::to_string(index_)}});
    }
}

bool
ShardHealthTracker::claimProbe(double now_seconds, bool admin_down)
{
    if (!ejectedFlag_.load(std::memory_order_relaxed))
        return false; // cheap pre-check off the routing hot path
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ejected_ || probeInFlight_ || admin_down)
        return false;
    if (now_seconds - ejectedAt_ < health_.probeAfterSeconds)
        return false;
    probeInFlight_ = true;
    probes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ShardHealthTracker::recordProbeOutcome(bool ok, double now_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    probeInFlight_ = false;
    if (!ejected_)
        return;
    if (ok) {
        if (++probeSuccesses_ >= health_.recoveryProbes) {
            ejected_ = false;
            ejectedFlag_.store(false, std::memory_order_relaxed);
            recoveries_.fetch_add(1, std::memory_order_relaxed);
            probeSuccesses_ = 0;
            logMessage(LogLevel::Info,
                       "cluster: shard " + std::to_string(index_) +
                           " recovered after probing");
            if (events_ != nullptr)
                events_->note(now_seconds, "shard_recover",
                              "shard " + std::to_string(index_) +
                                  " rejoined routing after probes",
                              {{"shard", std::to_string(index_)}});
        }
    } else {
        probeSuccesses_ = 0;
        ejectedAt_ = now_seconds; // re-arm the cooldown
    }
}

} // namespace sirius::core
