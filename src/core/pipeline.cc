#include "core/pipeline.h"

#include "common/logging.h"
#include "common/strings.h"
#include "nlp/tokenizer.h"
#include "search/corpus.h"
#include "vision/landmarks.h"

namespace sirius::core {

SiriusPipeline
SiriusPipeline::build(SiriusConfig config)
{
    SiriusPipeline pipeline;
    pipeline.config_ = config;

    speech::AsrConfig asr_config = config.asr;
    asr_config.backend = config.asrBackend;
    pipeline.asr_ = std::make_unique<speech::AsrService>(
        speech::AsrService::train(asrTrainingSentences(), asr_config));

    pipeline.qa_ = std::make_unique<qa::QaService>(
        qa::QaService::build(config.qa));

    pipeline.imm_ = std::make_unique<vision::ImmService>(
        vision::ImmService::build(config.numLandmarks, config.surf));

    return pipeline;
}

std::string
SiriusPipeline::augmentWithLandmark(const std::string &question,
                                    int landmark_id)
{
    // Replace the deictic phrase "this <noun>" with the entity the image
    // matched, e.g. "when does this restaurant close" ->
    // "when does falcon restaurant close".
    const auto tokens = nlp::tokenize(toLower(question));
    std::vector<std::string> out;
    const std::string name = toLower(
        search::landmarkName(landmark_id));
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == "this" && i + 1 < tokens.size()) {
            out.push_back(name);
            ++i; // skip the generic noun
        } else {
            out.push_back(tokens[i]);
        }
    }
    return join(out);
}

SiriusResult
SiriusPipeline::process(const audio::Waveform &wave,
                        const vision::Image *image) const
{
    SiriusResult result;

    // Stage 1: automatic speech recognition.
    const auto asr = asr_->transcribe(wave);
    result.transcript = asr.text;
    result.timings.asr = asr.timings;

    // Stage 2: query classification.
    result.queryClass = classifier_.classify(result.transcript);
    if (result.queryClass == QueryClass::Action) {
        result.action = result.transcript;
        result.intent = intentParser_.parse(result.transcript);
        return result;
    }

    // Stage 3 (optional): image matching.
    std::string question = result.transcript;
    if (image != nullptr) {
        const auto imm = imm_->match(*image);
        result.matchedLandmark = imm.bestId;
        result.timings.imm = imm.timings;
        if (imm.bestId >= 0)
            question = augmentWithLandmark(question, imm.bestId);
    }
    result.augmentedQuestion = question;

    // Stage 4: question answering.
    const auto qa = qa_->answer(question);
    result.answer = qa.answer;
    result.timings.qa = qa.timings;
    return result;
}

SiriusResult
SiriusPipeline::process(const Query &query) const
{
    const auto wave = asr_->synthesize(query.text);
    if (query.type == QueryType::VoiceImageQuery) {
        const vision::Image image =
            vision::generateQueryView(query.landmarkId);
        return process(wave, &image);
    }
    return process(wave, nullptr);
}

double
SiriusPipeline::accuracy(const std::vector<Query> &queries) const
{
    if (queries.empty())
        return 0.0;
    size_t correct = 0;
    for (const auto &query : queries) {
        const auto result = process(query);
        switch (query.type) {
          case QueryType::VoiceCommand:
            correct += result.queryClass == QueryClass::Action &&
                toLower(result.action) == toLower(query.text);
            break;
          case QueryType::VoiceQuery:
          case QueryType::VoiceImageQuery:
            correct += result.queryClass == QueryClass::Question &&
                toLower(result.answer).find(query.expectedAnswer) !=
                    std::string::npos;
            break;
        }
    }
    return static_cast<double>(correct) /
        static_cast<double>(queries.size());
}

} // namespace sirius::core
