#include "core/pipeline.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/batch_scheduler.h"
#include "core/pipeline_cache.h"
#include "nlp/tokenizer.h"
#include "search/corpus.h"
#include "vision/landmarks.h"

namespace sirius::core {

namespace {

void
appendShed(SiriusResult &result, const char *stage)
{
    if (!result.shedStages.empty())
        result.shedStages += ",";
    result.shedStages += stage;
}

/**
 * Record a rung-drop decision as an instant trace event, so a trace
 * shows not only *that* a query degraded but the stage whose loss
 * caused it and the budget state at the moment of the decision.
 */
void
traceDegradation(Degradation rung, const char *stage,
                 const ProcessOptions &options)
{
    TraceContext *trace = TraceContext::current();
    if (trace == nullptr || !trace->active())
        return;
    trace->event(SpanKind::Degradation, "rung_drop",
                 {{"rung", degradationName(rung)},
                  {"stage", stage},
                  {"deadline_expired",
                   options.deadline.expired() ? "1" : "0"}});
}

void
sleepSeconds(double seconds)
{
    if (seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
    }
}

/**
 * Run one stage under the fault/retry policy: draw the attempt's fate,
 * stall through Latency faults, retry Failure faults with exponential
 * backoff, and hand Corruption through to the stage body.
 * @param run invoked as run(corrupted) for every attempt that executes
 * @return false when failures exhausted the retry budget or the
 *         deadline expired between retries
 */
template <typename Run>
bool
attemptStage(const ProcessOptions &options, const char *stage,
             int &retries, Run &&run)
{
    TraceContext *trace = TraceContext::current();
    double backoff = options.retry.backoffSeconds;
    for (int attempt = 0;; ++attempt) {
        StageFault fault = StageFault::None;
        if (options.faults != nullptr) {
            fault = options.faults->draw(stage);
            if (fault != StageFault::None && trace != nullptr) {
                trace->event(SpanKind::Fault, "fault_injected",
                             {{"stage", stage},
                              {"kind", stageFaultName(fault)},
                              {"attempt", std::to_string(attempt)}});
            }
            if (fault == StageFault::Latency) {
                const FaultConfig &fc = options.faults->config();
                // A manual clock makes the stall virtual: deadline
                // tests advance time instead of sleeping for real.
                if (fc.latencyClock != nullptr)
                    fc.latencyClock->advance(fc.addedLatencySeconds);
                else
                    sleepSeconds(fc.addedLatencySeconds);
            }
        }
        if (fault != StageFault::Failure) {
            run(fault == StageFault::Corruption);
            return true;
        }
        if (attempt >= options.retry.maxRetries)
            return false;
        ++retries;
        if (trace != nullptr) {
            trace->event(SpanKind::Retry, "stage_retry",
                         {{"stage", stage},
                          {"attempt", std::to_string(attempt + 1)},
                          {"backoff_s", std::to_string(backoff)}});
        }
        sleepSeconds(backoff);
        backoff *= options.retry.backoffMultiplier;
        if (options.deadline.expired())
            return false; // no budget left to keep retrying into
    }
}

} // namespace

const char *
degradationName(Degradation degradation)
{
    switch (degradation) {
      case Degradation::None: return "none";
      case Degradation::ViqToVq: return "viq->vq";
      case Degradation::VqToVc: return "vq->vc";
      case Degradation::ViqToVc: return "viq->vc";
      case Degradation::Failed: return "failed";
    }
    return "?";
}

SiriusPipeline
SiriusPipeline::build(SiriusConfig config)
{
    SiriusPipeline pipeline;
    pipeline.config_ = config;

    speech::AsrConfig asr_config = config.asr;
    asr_config.backend = config.asrBackend;
    pipeline.asr_ = std::make_unique<speech::AsrService>(
        speech::AsrService::train(asrTrainingSentences(), asr_config));

    pipeline.qa_ = std::make_unique<qa::QaService>(
        qa::QaService::build(config.qa));

    pipeline.imm_ = std::make_unique<vision::ImmService>(
        vision::ImmService::build(config.numLandmarks, config.surf));

    return pipeline;
}

std::string
SiriusPipeline::augmentWithLandmark(const std::string &question,
                                    int landmark_id)
{
    // Replace the deictic phrase "this <noun>" with the entity the image
    // matched, e.g. "when does this restaurant close" ->
    // "when does falcon restaurant close".
    const auto tokens = nlp::tokenize(toLower(question));
    std::vector<std::string> out;
    const std::string name = toLower(
        search::landmarkName(landmark_id));
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == "this" && i + 1 < tokens.size()) {
            out.push_back(name);
            ++i; // skip the generic noun
        } else {
            out.push_back(tokens[i]);
        }
    }
    return join(out);
}

SiriusResult
SiriusPipeline::process(const audio::Waveform &wave,
                        const vision::Image *image) const
{
    return process(wave, image, ProcessOptions{});
}

SiriusResult
SiriusPipeline::process(const audio::Waveform &wave,
                        const vision::Image *image,
                        const ProcessOptions &options) const
{
    SiriusResult result = processRobust(wave, image, options);
    if (options.deadline.expired())
        result.deadlineExpired = true;
    return result;
}

SiriusResult
SiriusPipeline::processRobust(const audio::Waveform &wave,
                              const vision::Image *image,
                              const ProcessOptions &options) const
{
    SiriusResult result;

    // Out of budget before any stage ran: shed the whole ladder.
    if (options.deadline.expired()) {
        result.degradation = Degradation::Failed;
        appendShed(result, "asr");
        if (image != nullptr)
            appendShed(result, "imm");
        appendShed(result, "qa");
        traceDegradation(Degradation::Failed, "asr", options);
        return result;
    }

    // Stage 1: automatic speech recognition. Every pathway needs the
    // transcript, so a lost ASR stage fails the query — there is no
    // lower rung on the ladder to degrade to.
    bool asr_cut_short = false;
    bool asr_ok;
    {
        Span span("asr", SpanKind::Stage);
        asr_ok = attemptStage(
            options, "asr", result.stageRetries, [&](bool corrupted) {
                auto asr = asr_->transcribe(
                    wave, options.deadline, options.batcher,
                    options.caches != nullptr
                        ? &options.caches->acousticScores()
                        : nullptr);
                if (corrupted && options.faults != nullptr)
                    asr.text = options.faults->corrupt(asr.text);
                result.transcript = asr.text;
                result.timings.asr = asr.timings;
                asr_cut_short = asr.cutShort;
            });
        span.attr("cut_short", asr_cut_short ? "1" : "0");
    }
    if (!asr_ok || asr_cut_short) {
        result.transcript.clear();
        result.degradation = Degradation::Failed;
        appendShed(result, "asr");
        if (image != nullptr)
            appendShed(result, "imm");
        appendShed(result, "qa");
        traceDegradation(Degradation::Failed, "asr", options);
        return result;
    }

    // Stage 2: query classification (trivial, never shed).
    {
        Span span("classify", SpanKind::Stage);
        result.queryClass = classifier_.classify(result.transcript);
    }
    if (result.queryClass == QueryClass::Action) {
        result.action = result.transcript;
        result.intent = intentParser_.parse(result.transcript);
        return result;
    }

    // Stage 3 (optional): image matching. Shed on an expired budget or
    // exhausted retries — the VIQ query degrades to a plain VQ and the
    // question goes to QA without the landmark substitution.
    std::string question = result.transcript;
    bool imm_shed = false;
    if (image != nullptr) {
        if (options.deadline.expired()) {
            imm_shed = true;
        } else {
            bool imm_cut_empty = false;
            Span span("imm", SpanKind::Stage);
            const bool imm_ok = attemptStage(
                options, "imm", result.stageRetries,
                [&](bool corrupted) {
                    auto imm = imm_->match(
                        *image, options.deadline, options.batcher,
                        options.caches != nullptr
                            ? &options.caches->matches()
                            : nullptr);
                    // A corrupted match is untrustworthy: discard it
                    // rather than augment with a wrong landmark.
                    if (corrupted)
                        imm.bestId = -1;
                    result.matchedLandmark = imm.bestId;
                    result.timings.imm = imm.timings;
                    imm_cut_empty = imm.cutShort && imm.bestId < 0;
                });
            imm_shed = !imm_ok || imm_cut_empty;
            span.attr("shed", imm_shed ? "1" : "0");
        }
        if (imm_shed) {
            result.matchedLandmark = -1;
            result.degradation = Degradation::ViqToVq;
            appendShed(result, "imm");
            traceDegradation(Degradation::ViqToVq, "imm", options);
        } else if (result.matchedLandmark >= 0) {
            question =
                augmentWithLandmark(question, result.matchedLandmark);
        }
    }
    result.augmentedQuestion = question;

    // Stage 4: question answering. Shed on an expired budget or
    // exhausted retries — the query bottoms out at a VC-level partial
    // result: transcript and classification, no answer.
    bool qa_shed = false;
    if (options.deadline.expired()) {
        qa_shed = true;
    } else {
        // A QA pass cut short with nothing selected delivered no answer,
        // so it counts as shed; a cut-short pass that still picked an
        // answer from partial evidence counts as served.
        bool qa_cut_empty = false;
        bool qa_cache_hit = false;
        AnswerCache *answers = options.caches != nullptr
            ? &options.caches->answers()
            : nullptr;
        Span span("qa", SpanKind::Stage);
        const bool qa_ok = attemptStage(
            options, "qa", result.stageRetries, [&](bool corrupted) {
                // The answer cache is probed inside the attempt so the
                // fault machinery is unchanged: latency faults still
                // stall, failures still retry, and a corrupted attempt
                // bypasses the cache both ways (never serves a clean
                // answer in place of the injected corruption, never
                // stores the corrupted one).
                const CacheKey128 key = answers != nullptr
                    ? answerCacheKey(question)
                    : CacheKey128{};
                if (!corrupted && answers != nullptr) {
                    CachedAnswer cached;
                    if (answers->get(key, cached, options.deadline)) {
                        qa_cache_hit = true;
                        result.answer = cached.answer;
                        result.timings.qa = {};
                        qa_cut_empty = false;
                        return;
                    }
                }
                auto qa = qa_->answer(question, options.deadline);
                if (corrupted && options.faults != nullptr) {
                    qa.answer = options.faults->corrupt(qa.answer);
                } else if (answers != nullptr && !qa.cutShort &&
                           !qa.answer.empty()) {
                    answers->put(
                        key,
                        CachedAnswer{qa.answer, qa.confidence},
                        answerCacheBytes(
                            CachedAnswer{qa.answer, qa.confidence}));
                }
                result.answer = qa.answer;
                result.timings.qa = qa.timings;
                qa_cut_empty = qa.cutShort && qa.answer.empty();
            });
        qa_shed = !qa_ok || qa_cut_empty;
        span.attr("shed", qa_shed ? "1" : "0");
        span.attr("cache", qa_cache_hit ? "hit" : "miss");
    }
    if (qa_shed) {
        result.answer.clear();
        result.degradation = image != nullptr ? Degradation::ViqToVc
                                              : Degradation::VqToVc;
        appendShed(result, "qa");
        traceDegradation(result.degradation, "qa", options);
    }
    return result;
}

SiriusResult
SiriusPipeline::process(const Query &query) const
{
    return process(query, ProcessOptions{});
}

SiriusResult
SiriusPipeline::process(const Query &query,
                        const ProcessOptions &options) const
{
    // Overdue before synthesis: shed everything without paying for
    // audio or image generation. This is what keeps overdue queued
    // requests near-free under overload, so the queue drains instead of
    // diverging.
    if (options.deadline.expired()) {
        SiriusResult result;
        result.degradation = Degradation::Failed;
        appendShed(result, "asr");
        if (query.type == QueryType::VoiceImageQuery)
            appendShed(result, "imm");
        appendShed(result, "qa");
        result.deadlineExpired = true;
        return result;
    }
    // Input synthesis is test-harness work a deployed server would not
    // do, so it gets its own span: without it, synthesized-input time
    // would silently inflate the "other" bucket of every trace.
    Span synth("synthesize_input", SpanKind::Stage);
    const auto wave = asr_->synthesize(query.text);
    if (query.type == QueryType::VoiceImageQuery) {
        const vision::Image image =
            vision::generateQueryView(query.landmarkId);
        synth.end();
        return process(wave, &image, options);
    }
    synth.end();
    return process(wave, nullptr, options);
}

double
SiriusPipeline::accuracy(const std::vector<Query> &queries) const
{
    if (queries.empty())
        return 0.0;
    size_t correct = 0;
    for (const auto &query : queries) {
        const auto result = process(query);
        switch (query.type) {
          case QueryType::VoiceCommand:
            correct += result.queryClass == QueryClass::Action &&
                toLower(result.action) == toLower(query.text);
            break;
          case QueryType::VoiceQuery:
          case QueryType::VoiceImageQuery:
            correct += result.queryClass == QueryClass::Question &&
                toLower(result.answer).find(query.expectedAnswer) !=
                    std::string::npos;
            break;
        }
    }
    return static_cast<double>(correct) /
        static_cast<double>(queries.size());
}

} // namespace sirius::core
