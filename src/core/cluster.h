/**
 * @file
 * Scale-out serving tier: a cluster router in front of M replicated
 * backend shards, each an independent core::ConcurrentServer with its
 * own queue, batcher, and caches.
 *
 * The paper's warehouse-scale analysis (Figures 16/17) never treats one
 * node as the deployment unit: a Sirius service is a fleet of leaf
 * servers behind a load balancer, and the latency/throughput story is
 * told per fleet. This layer makes the unit of composition a whole
 * server. The router owns shard lifecycle and placement:
 *
 *  - routing by a pluggable policy (round robin, least outstanding,
 *    power-of-two-choices, affinity hash — the last keeps cache-friendly
 *    repeats on the same shard so per-shard caches stay warm);
 *  - per-shard health from a rolling window of error/deadline-miss
 *    outcomes, with ejection and probed recovery;
 *  - one-retry failover of Failed results to a healthy replica (every
 *    shard runs the same trained pipeline, so a failover answer is
 *    bitwise-identical to the one the dead shard would have produced);
 *  - optional hedged requests: when a query has been outstanding for a
 *    configured slice of its budget, a second copy is sent to another
 *    shard and the first completion wins.
 *
 * Fleet statistics merge the per-shard ServerStats (common/stats keeps
 * histograms mergeable), export as `sirius_cluster_*` metrics with
 * `shard=` / `policy=` / `outcome=` labels, and record per-query Route
 * spans into a router-level trace collector. docs/SCALING.md is the
 * operator-facing guide.
 */

#ifndef SIRIUS_CORE_CLUSTER_H
#define SIRIUS_CORE_CLUSTER_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/concurrent_server.h"
#include "core/shard_health.h"

namespace sirius::core {

/** How the router picks a shard for each query. */
enum class RoutingPolicy
{
    RoundRobin,       ///< rotate through the healthy shards
    LeastOutstanding, ///< fewest in-flight + queued requests wins
    PowerOfTwo,       ///< two random healthy picks, lesser load wins
    AffinityHash,     ///< hash(query text) -> shard; cache-friendly
};

/** Number of RoutingPolicy values (for sweeps over all policies). */
inline constexpr size_t kRoutingPolicies = 4;

/** Short policy name ("rr", "least", "p2c", "affinity"). */
const char *routingPolicyName(RoutingPolicy policy);

/** Parse a routingPolicyName back; returns false on an unknown name. */
bool routingPolicyFromName(const std::string &name, RoutingPolicy &out);

// ClusterHealthConfig (ejection/probe thresholds) and the rolling-window
// state machine live in core/shard_health.h so the simulation harness
// (src/sim) can run the identical health logic on a virtual clock.

/**
 * Pure routing-policy choice over a routable mask — the decision core
 * of ClusterRouter::pickShard, shared with the deterministic simulator
 * so both tiers route identically.
 *
 * @param ok        per-shard routable mask (1 = may receive the query)
 * @param ok_count  number of set entries in @p ok (> 0)
 * @param loads     per-shard outstanding request counts
 * @param rr_turn   monotonically increasing turn counter (rr/least)
 * @param affinity_lo low 64 bits of the query's content hash (affinity)
 * @param rng       seeded stream for the power-of-two draws
 * @return chosen shard index, or SIZE_MAX when nothing is routable
 */
size_t chooseByPolicy(RoutingPolicy policy, const std::vector<uint8_t> &ok,
                      size_t ok_count, const std::vector<size_t> &loads,
                      uint64_t rr_turn, uint64_t affinity_lo, Rng &rng);

/** Sizing and policy of a ClusterRouter. */
struct ClusterConfig
{
    size_t shards = 2; ///< replicated backend shards (>= 1)
    RoutingPolicy policy = RoutingPolicy::LeastOutstanding;

    /**
     * Applied to every shard: each gets its own queue, workers,
     * batcher, and caches from this one template. The router rewrites
     * `traceIdOffset` per shard (shard i gets base + i * 10^7) so all
     * shards' spans can share one JSONL file without id collisions.
     */
    ConcurrentServerConfig shard;

    /**
     * Re-route a query whose result came back Failed to another healthy
     * shard this many times before delivering the failure. Replicas run
     * identical pipelines, so a failover result is bitwise-identical to
     * what the failed shard would have produced (tests/test_cluster.cc
     * holds this against the e2e goldens).
     */
    int failoverRetries = 1;

    /**
     * Hedged requests: when > 0 and a query has been outstanding this
     * many seconds, send a second copy to another healthy shard and
     * deliver whichever completes first. 0 (the default) disables
     * hedging. Intended for deadline-critical traffic: set it to the
     * tail you can afford, e.g. half the deadline budget. A hedged
     * query never also fails over — the hedge *is* its retry.
     */
    double hedgeSeconds = 0.0;

    ClusterHealthConfig health; ///< ejection + probed recovery knobs

    /**
     * Virtual clock for deterministic tests; null = wall clock. When
     * set, the health windows (ejection cooldowns), hedge due-times and
     * the router's event/SLO timestamps all read this clock, and the
     * hedge timer thread stops sleeping on wall time — the test (or
     * sim executor) advances the clock and calls pollHedges() to fire
     * any hedges that came due. Must outlive the router.
     */
    const ManualTime *clock = nullptr;

    /** Seed of the power-of-two-choices random draws. */
    uint64_t seed = 0xC1057E42ULL;

    /**
     * Per-shard fault-injector overrides for drills and tests: entry i
     * (when present and non-null) replaces `shard.faults` for shard i
     * only, so one replica can be made faulty while the rest stay
     * clean. Not owned; injectors must outlive the router.
     */
    std::vector<FaultInjector *> shardFaults;

    /**
     * Optional fleet-level SLO tracker; not owned. The router feeds it
     * one availability outcome per *leg* (a failed leg burns error
     * budget even when failover rescues the query — that is what makes
     * a shard outage visible to the burn-rate alerts) and one latency
     * observation per *delivered* query. Shards get their `slo` forced
     * to null so nothing is double-counted.
     */
    SloTracker *slo = nullptr;

    /**
     * Optional flight recorder shared by the router and every shard;
     * not owned. Shards contribute their legs' spans with
     * offerPartial(); the router completes each trace with offer() at
     * delivery, so a retained trace holds the route summary, every
     * route_leg, and the winning (plus any merged late) shard spans.
     */
    FlightRecorder *flight = nullptr;

    /**
     * Optional structured event log; not owned. The router writes
     * shard lifecycle transitions into it (shard_eject, shard_recover,
     * shard_kill, shard_revive) so drills can assert on *when* the
     * fleet changed shape, not just on end-of-run counters.
     */
    EventLog *events = nullptr;
};

/**
 * One replicated backend: a ConcurrentServer plus the health state the
 * router keeps about it. Health is judged from a rolling window of
 * outcomes (bad = Failed result or deadline miss): a shard whose bad
 * rate exceeds the threshold is ejected from routing, then probed with
 * single live queries after a cooldown, and rejoins after a run of
 * probe successes. killShard()/reviveShard() on the router layer an
 * administrative switch on top for drills and planned drains.
 */
class BackendShard
{
  public:
    BackendShard(const SiriusPipeline &pipeline,
                 const ConcurrentServerConfig &config, size_t index,
                 const ClusterHealthConfig &health,
                 EventLog *events = nullptr);

    BackendShard(const BackendShard &) = delete;
    BackendShard &operator=(const BackendShard &) = delete;

    ConcurrentServer &server() { return server_; }
    const ConcurrentServer &server() const { return server_; }
    size_t index() const { return index_; }

    /** In-flight + queued requests the router has placed here. */
    size_t outstanding() const
    {
        return outstanding_.load(std::memory_order_relaxed);
    }

    /** True when the router may route new queries here. */
    bool healthy() const
    {
        return !adminDown_.load(std::memory_order_relaxed) &&
               !health_.ejected();
    }

    /** True when killShard() took this shard out administratively. */
    bool adminDown() const
    {
        return adminDown_.load(std::memory_order_relaxed);
    }

    uint64_t ejections() const { return health_.ejections(); }
    uint64_t recoveries() const { return health_.recoveries(); }
    uint64_t probes() const { return health_.probes(); }

  private:
    friend class ClusterRouter;

    void noteDispatch() { outstanding_.fetch_add(1); }
    void noteComplete() { outstanding_.fetch_sub(1); }

    void setAdminDown(bool down);

    /** Fold one outcome into the window; may eject. */
    void recordOutcome(bool bad, double now_seconds)
    {
        health_.recordOutcome(bad, now_seconds);
    }

    /** True when this call won the right to route one probe query. */
    bool claimProbe(double now_seconds)
    {
        return health_.claimProbe(now_seconds, adminDown());
    }

    /** Probe outcome: recover after a run of successes, else re-arm. */
    void recordProbeOutcome(bool ok, double now_seconds)
    {
        health_.recordProbeOutcome(ok, now_seconds);
    }

    ConcurrentServer server_;
    const size_t index_;

    std::atomic<size_t> outstanding_{0};
    std::atomic<bool> adminDown_{false};

    /** The rolling-window eject/probe/recover machine (shared with the
     *  simulator via core/shard_health.h). */
    ShardHealthTracker health_;
};

/** Race-free snapshot of a ClusterRouter's statistics. */
struct ClusterStats
{
    /** Every shard's ServerStats merged into one fleet view. */
    ServerStats fleet;
    /** Every shard's caches summed (affinity keeps these warm). */
    PipelineCacheSnapshot caches;
    std::vector<ConcurrentServerStats> shards; ///< per-shard detail

    uint64_t accepted = 0;   ///< cluster-level admissions
    uint64_t rejected = 0;   ///< every healthy shard's queue was full
    uint64_t failovers = 0;  ///< Failed results re-routed to a replica
    uint64_t hedgesFired = 0;///< hedge legs actually sent
    uint64_t hedgeWins = 0;  ///< hedge leg delivered before the primary
    uint64_t ejections = 0;  ///< health-based removals from routing
    uint64_t recoveries = 0; ///< probed returns to routing
    uint64_t probes = 0;     ///< probe queries sent to ejected shards
    size_t healthyShards = 0;

    /** Cluster-level outcomes of delivered queries, by Degradation. */
    std::array<uint64_t, kDegradationLevels> outcomes{};

    /** Everything above as labeled `sirius_cluster_*` metrics plus the
     *  per-shard server metrics under `server=shard<i>` labels. */
    MetricsRegistry metrics;
    /** The router's Route spans (empty when tracing is disabled). */
    std::vector<SpanRecord> routerSpans;
    /** Spans lost to any trace ring: router collector + every shard. */
    uint64_t traceDropped = 0;
    /** Fleet SLO state (empty when config.slo is null). */
    SloSnapshot slo;
    /** Flight-recorder accounting (zeros when config.flight is null). */
    FlightRecorderStats flight;
    /** Retained events, oldest first (empty when config.events is null). */
    std::vector<EventLog::Event> events;
};

/**
 * The cluster front end: owns M BackendShards and routes every query to
 * one of them (failover and hedging may involve a second). submit() and
 * handle() mirror ConcurrentServer's contract so load generators work
 * against either; drain() blocks until every admitted query — including
 * failover and hedge legs — has completed.
 */
class ClusterRouter
{
  public:
    using Completion = ConcurrentServer::Completion;

    /** @param pipeline trained pipeline shared by every shard; must
     *  outlive the router. */
    ClusterRouter(const SiriusPipeline &pipeline, ClusterConfig config);

    ClusterRouter(const ClusterRouter &) = delete;
    ClusterRouter &operator=(const ClusterRouter &) = delete;

    /** Drains outstanding queries, then stops the shards. */
    ~ClusterRouter();

    /**
     * Admit @p query and route it by the configured policy.
     * @param done invoked once with the delivered result (after any
     *        failover/hedging) on a shard worker thread; may be null
     * @return false when every routable shard's queue was full
     */
    bool submit(const Query &query, Completion done = nullptr);

    /** Closed-loop path: block until served (backpressure, no shed). */
    SiriusResult handle(const Query &query);

    /** Block until every admitted query (and every leg) completed. */
    void drain();

    /** Administratively remove shard @p index from routing (drill /
     *  planned drain). In-flight queries on it still complete. */
    void killShard(size_t index);

    /** Undo killShard(); health-based ejection still applies. */
    void reviveShard(size_t index);

    /**
     * Fault-mode drill switch: arm (or disarm) shard @p index's
     * injector from ClusterConfig::shardFaults and write a "drill"
     * event. Unlike killShard(), an armed shard keeps *receiving*
     * queries and fails them, so the outage is visible to health
     * ejection and the SLO burn-rate alerts instead of being drained
     * cleanly around. Fatal when the shard has no injector configured.
     */
    void setShardFaults(size_t index, bool enabled);

    size_t shardCount() const { return shards_.size(); }
    BackendShard &shard(size_t index) { return *shards_.at(index); }
    const BackendShard &shard(size_t index) const
    {
        return *shards_.at(index);
    }

    /**
     * Clock-mode hedge pump: fire every hedge whose due time has passed
     * on the injected ClusterConfig::clock. No-op under the wall clock
     * (the background hedge thread handles timing there). Tests and the
     * sim executor call this after each ManualTime::advance().
     */
    void pollHedges();

    /**
     * Clock-mode batch pump: flush every shard's expired partial
     * batches (see ConcurrentServer::pollBatches). Drivers advancing
     * the injected clock call this alongside pollHedges() so queries
     * parked in partial batches make progress.
     */
    void
    pollBatches()
    {
        for (auto &shard : shards_)
            shard->server().pollBatches();
    }

    /** Copy of the statistics, consistent under concurrent traffic. */
    ClusterStats snapshot() const;

    /**
     * Export the fleet's metrics into @p registry: per-shard server
     * metrics under `server=shard<i>` plus the `sirius_cluster_*`
     * family under @p base labels.
     */
    void exportMetrics(MetricsRegistry &registry,
                       const MetricLabels &base = {{"cluster",
                                                    "sirius"}}) const;

    /** The router-level collector holding Route spans. */
    const TraceCollector &traces() const { return collector_; }

    const ClusterConfig &config() const { return config_; }

  private:
    /** Per-query state shared by every leg (primary, failover, hedge). */
    struct QueryState;

    /** Healthy-shard pick by policy; @p avoid is excluded when another
     *  choice exists; SIZE_MAX when nothing is routable. */
    size_t pickShard(const Query &query, size_t avoid);

    /** Route one leg of @p state to shard @p index. Returns false when
     *  that shard's queue was full (the leg never started). @p arm
     *  labels the leg's role in the stitched trace ("primary",
     *  "failover", "hedge", "probe"). */
    bool dispatch(const std::shared_ptr<QueryState> &state, size_t index,
                  bool probe, const char *arm);

    void onLegDone(const std::shared_ptr<QueryState> &state, size_t index,
                   bool probe, const char *arm, uint32_t leg_span,
                   double dispatched_at, const SiriusResult &result);

    /** Record one leg's route_leg span (and, for a leg finishing after
     *  delivery, hand it to the flight recorder as a late partial). */
    void recordLegSpan(const std::shared_ptr<QueryState> &state,
                       size_t index, const char *arm, uint32_t leg_span,
                       double dispatched_at, bool won,
                       const SiriusResult &result);

    /** Release the cluster in-flight slot once the last leg finished
     *  after delivery. */
    void finishLeg(const std::shared_ptr<QueryState> &state);

    void hedgeLoop();

    /** Send the hedge leg of every pending entry due at @p now. */
    void fireDueHedges(double now);

    double nowSeconds() const
    {
        return config_.clock != nullptr ? config_.clock->now()
                                        : collector_.nowSeconds();
    }

    const SiriusPipeline &pipeline_;
    ClusterConfig config_;
    std::vector<std::unique_ptr<BackendShard>> shards_;

    std::atomic<uint64_t> nextQueryId_{0};
    std::atomic<uint64_t> rrCursor_{0};
    std::mutex rngMutex_; ///< guards rng_ (p2c draws)
    Rng rng_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> failovers_{0};
    std::atomic<uint64_t> hedgesFired_{0};
    std::atomic<uint64_t> hedgeWins_{0};
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> routed_;
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> failoversFrom_;
    std::array<std::atomic<uint64_t>, kDegradationLevels> outcomes_{};

    TraceCollector collector_; ///< Route spans, router-level ids

    std::mutex inFlightMutex_;
    std::condition_variable inFlightZero_;
    size_t inFlight_ = 0;

    // Hedge timer: pending (due time -> query state) entries served by
    // one background thread; stale entries (already delivered) are
    // skipped when they come due.
    std::mutex hedgeMutex_;
    std::condition_variable hedgeWake_;
    std::multimap<double, std::weak_ptr<QueryState>> hedgePending_;
    bool hedgeStop_ = false;
    std::thread hedgeThread_; ///< started only when hedging is on
};

/**
 * Extra knobs of the cluster load generators (the plain knobs match the
 * single-server generators in concurrent_server.h).
 */
struct ClusterLoadOptions
{
    uint64_t seed = 31337;
    double zipfSkew = 0.0; ///< > 0: Zipf-skewed query draws
    /**
     * Outage drill: administratively kill shard `killShard` just before
     * submitting request number `killShardAt` (1-based; 0 disables) and
     * revive it at `reviveShardAt` (0: stays dead). The assertion worth
     * making afterwards: fleet `failed` stays 0 — routing plus failover
     * absorb the outage (scripts/cluster_smoke.sh automates it).
     */
    size_t killShardAt = 0;
    size_t killShard = 0;
    size_t reviveShardAt = 0;
    /**
     * Fault-mode twin of the admin drill: when true, the kill/revive
     * points call ClusterRouter::setShardFaults() instead of
     * killShard()/reviveShard(), so the shard fails queries loudly
     * (burning SLO error budget) rather than draining cleanly. The
     * router must have an injector in shardFaults[killShard]
     * (scripts/slo_smoke.sh drives this via load_test --kill-mode
     * fault).
     */
    bool killByFault = false;
};

/** Open-loop Poisson load against a cluster; see runOpenLoop(). */
MeasuredLoadResult runOpenLoop(ClusterRouter &router, double offered_qps,
                               size_t requests,
                               const ClusterLoadOptions &options = {});

/** Closed-loop load against a cluster; see runClosedLoop(). */
MeasuredLoadResult runClosedLoop(ClusterRouter &router, size_t clients,
                                 size_t queries_per_client,
                                 const ClusterLoadOptions &options = {});

/** Virtual-time projection of a closed-loop fleet run. */
struct FleetProjection
{
    double aggregateQps = 0.0; ///< completed / virtual makespan
    double meanSojournSeconds = 0.0;
    double p99SojournSeconds = 0.0;
    uint64_t completed = 0;
};

/**
 * Closed-loop fleet projection in virtual time: @p shards independent
 * nodes, each with @p workers_per_shard servers and @p clients_per_shard
 * blocking clients replaying *measured* per-query service times
 * (@p service_seconds, cycled round robin with a per-client offset).
 *
 * This is the scale-out counterpart of core::loadTest()'s Lindley
 * replay: a fleet's shards are separate machines in the deployment the
 * paper assumes, so their service capacity adds — a property a
 * single-container measurement cannot show once real threads outnumber
 * real cores (the closed-loop qps just time-slices). The projection
 * keeps the *measured* per-query costs and moves only the queueing into
 * virtual time; dcsim::shardedMm1Latency is its analytic cross-check.
 */
FleetProjection projectClosedLoopFleet(
    const std::vector<double> &service_seconds, size_t shards,
    size_t workers_per_shard, size_t clients_per_shard,
    size_t queries_per_client);

} // namespace sirius::core

#endif // SIRIUS_CORE_CLUSTER_H
