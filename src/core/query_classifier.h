/**
 * @file
 * The Query Classifier (QC) stage of the Sirius pipeline (Figure 2):
 * decides whether transcribed speech is a device action or a question for
 * the QA back end.
 */

#ifndef SIRIUS_CORE_QUERY_CLASSIFIER_H
#define SIRIUS_CORE_QUERY_CLASSIFIER_H

#include <string>
#include <vector>

#include "nlp/regex.h"

namespace sirius::core {

/** Classifier verdict. */
enum class QueryClass
{
    Action,   ///< execute on the mobile device
    Question, ///< route to the QA service
};

/** Rule-based action/question classifier over transcribed text. */
class QueryClassifier
{
  public:
    QueryClassifier();

    /** Classify a transcript. */
    QueryClass classify(const std::string &transcript) const;

  private:
    std::vector<nlp::Regex> questionPatterns_;
    std::vector<std::string> imperativeVerbs_;
};

} // namespace sirius::core

#endif // SIRIUS_CORE_QUERY_CLASSIFIER_H
