#include "core/query_set.h"

#include <set>

#include "common/logging.h"

namespace sirius::core {

const char *
queryTypeName(QueryType type)
{
    switch (type) {
      case QueryType::VoiceCommand: return "VC";
      case QueryType::VoiceQuery: return "VQ";
      case QueryType::VoiceImageQuery: return "VIQ";
    }
    return "?";
}

const std::vector<Query> &
standardQuerySet()
{
    static const std::vector<Query> queries = {
        // ----- 16 voice commands (VC): actions executed on the device.
        {QueryType::VoiceCommand, "set my alarm for 8 am", -1, ""},
        {QueryType::VoiceCommand, "call my mother now", -1, ""},
        {QueryType::VoiceCommand, "send a message to john", -1, ""},
        {QueryType::VoiceCommand, "play some jazz music", -1, ""},
        {QueryType::VoiceCommand, "open the camera app", -1, ""},
        {QueryType::VoiceCommand, "turn on the flashlight", -1, ""},
        {QueryType::VoiceCommand, "remind me to buy milk", -1, ""},
        {QueryType::VoiceCommand, "start a timer for ten minutes", -1, ""},
        {QueryType::VoiceCommand, "take a picture now", -1, ""},
        {QueryType::VoiceCommand, "turn down the volume", -1, ""},
        {QueryType::VoiceCommand, "navigate to the airport", -1, ""},
        {QueryType::VoiceCommand, "add eggs to my shopping list", -1, ""},
        {QueryType::VoiceCommand, "show me my calendar", -1, ""},
        {QueryType::VoiceCommand, "mute all notifications", -1, ""},
        {QueryType::VoiceCommand, "read my new messages", -1, ""},
        {QueryType::VoiceCommand, "stop the music player", -1, ""},
        // ----- 16 voice queries (VQ): Table 2 style questions.
        {QueryType::VoiceQuery, "where is las vegas", -1, "nevada"},
        {QueryType::VoiceQuery, "what is the capital of italy", -1,
         "rome"},
        {QueryType::VoiceQuery, "who is the author of harry potter", -1,
         "rowling"},
        {QueryType::VoiceQuery, "who was elected 44th president", -1,
         "obama"},
        {QueryType::VoiceQuery, "what is the capital of france", -1,
         "paris"},
        {QueryType::VoiceQuery, "who invented the telephone", -1,
         "bell"},
        {QueryType::VoiceQuery, "what is the longest river in the world",
         -1, "nile"},
        {QueryType::VoiceQuery, "who painted the mona lisa", -1,
         "vinci"},
        {QueryType::VoiceQuery, "what is the largest ocean on earth", -1,
         "pacific"},
        {QueryType::VoiceQuery, "who wrote romeo and juliet", -1,
         "shakespeare"},
        {QueryType::VoiceQuery, "where is the eiffel tower", -1,
         "paris"},
        {QueryType::VoiceQuery, "what is the currency of japan", -1,
         "yen"},
        {QueryType::VoiceQuery, "who discovered the law of gravity", -1,
         "newton"},
        {QueryType::VoiceQuery,
         "what is the highest mountain in the world", -1, "everest"},
        {QueryType::VoiceQuery, "what is the capital of cuba", -1,
         "havana"},
        {QueryType::VoiceQuery,
         "who is the current president of the united states", -1,
         "obama"},
        // ----- 10 voice-image queries (VIQ): image supplies the entity.
        {QueryType::VoiceImageQuery, "when does this restaurant close",
         0, "9 pm"},
        {QueryType::VoiceImageQuery, "when does this restaurant close",
         1, "11 pm"},
        {QueryType::VoiceImageQuery, "when does this museum close", 2,
         "6 pm"},
        {QueryType::VoiceImageQuery, "when does this library close", 3,
         "8 pm"},
        {QueryType::VoiceImageQuery, "when does this cafe close", 4,
         "7 pm"},
        {QueryType::VoiceImageQuery, "when does this bakery close", 5,
         "5 pm"},
        {QueryType::VoiceImageQuery, "when does this theater close", 6,
         "12 pm"},
        {QueryType::VoiceImageQuery, "when does this hotel close", 7,
         "10 pm"},
        {QueryType::VoiceImageQuery, "when does this pharmacy close", 8,
         "9 pm"},
        {QueryType::VoiceImageQuery, "when does this gallery close", 9,
         "4 pm"},
    };
    return queries;
}

std::vector<Query>
queriesOfType(QueryType type)
{
    std::vector<Query> out;
    for (const auto &q : standardQuerySet()) {
        if (q.type == type)
            out.push_back(q);
    }
    return out;
}

std::vector<std::string>
asrTrainingSentences()
{
    std::vector<std::string> sentences;
    std::set<std::string> seen;
    for (const auto &q : standardQuerySet()) {
        if (seen.insert(q.text).second)
            sentences.push_back(q.text);
    }
    return sentences;
}

} // namespace sirius::core
