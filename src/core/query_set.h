/**
 * @file
 * The Sirius query taxonomy (Table 1) and the standard 42-query input set
 * (16 voice commands, 16 voice queries, 10 voice-image queries).
 */

#ifndef SIRIUS_CORE_QUERY_SET_H
#define SIRIUS_CORE_QUERY_SET_H

#include <string>
#include <vector>

namespace sirius::core {

/** Table 1 query classes. */
enum class QueryType
{
    VoiceCommand,    ///< VC: ASR only, action returned to the device
    VoiceQuery,      ///< VQ: ASR + QA
    VoiceImageQuery, ///< VIQ: ASR + QA + IMM
};

/** Short name ("VC", "VQ", "VIQ"). */
const char *queryTypeName(QueryType type);

/** One input query with evaluation ground truth. */
struct Query
{
    QueryType type;
    std::string text;          ///< words spoken by the user
    int landmarkId = -1;       ///< VIQ: which landmark the image shows
    std::string expectedAnswer;///< lower-case substring expected from QA
};

/** The full 42-query input set (16 VC + 16 VQ + 10 VIQ). */
const std::vector<Query> &standardQuerySet();

/** The subset of a given type. */
std::vector<Query> queriesOfType(QueryType type);

/**
 * Every distinct sentence the ASR must be able to decode: used to train
 * the ASR service's vocabulary and language model.
 */
std::vector<std::string> asrTrainingSentences();

} // namespace sirius::core

#endif // SIRIUS_CORE_QUERY_SET_H
