#include "core/cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>

#include "common/cache.h"
#include "common/logging.h"

namespace sirius::core {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin: return "rr";
      case RoutingPolicy::LeastOutstanding: return "least";
      case RoutingPolicy::PowerOfTwo: return "p2c";
      case RoutingPolicy::AffinityHash: return "affinity";
    }
    return "unknown";
}

bool
routingPolicyFromName(const std::string &name, RoutingPolicy &out)
{
    for (size_t i = 0; i < kRoutingPolicies; ++i) {
        const auto policy = static_cast<RoutingPolicy>(i);
        if (name == routingPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------------
// Routing-policy choice (shared with src/sim — see cluster.h)

size_t
chooseByPolicy(RoutingPolicy policy, const std::vector<uint8_t> &ok,
               size_t ok_count, const std::vector<size_t> &loads,
               uint64_t rr_turn, uint64_t affinity_lo, Rng &rng)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin: {
        size_t turn = static_cast<size_t>(rr_turn % ok_count);
        for (size_t i = 0; i < ok.size(); ++i) {
            if (ok[i] && turn-- == 0)
                return i;
        }
        break;
      }
      case RoutingPolicy::LeastOutstanding: {
        // Rotating scan start so ties (the common idle case) spread
        // round robin instead of piling onto the lowest index.
        const size_t start = static_cast<size_t>(rr_turn % ok.size());
        size_t best = SIZE_MAX;
        size_t best_load = std::numeric_limits<size_t>::max();
        for (size_t k = 0; k < ok.size(); ++k) {
            const size_t i = (start + k) % ok.size();
            if (!ok[i])
                continue;
            if (loads[i] < best_load) {
                best = i;
                best_load = loads[i];
            }
        }
        return best;
      }
      case RoutingPolicy::PowerOfTwo: {
        // Two uniform picks over the routable set, lesser load wins.
        const size_t a_turn = static_cast<size_t>(rng.below(ok_count));
        const size_t b_turn = static_cast<size_t>(rng.below(ok_count));
        size_t a = SIZE_MAX, b = SIZE_MAX;
        size_t seen = 0;
        for (size_t i = 0; i < ok.size(); ++i) {
            if (!ok[i])
                continue;
            if (seen == a_turn)
                a = i;
            if (seen == b_turn)
                b = i;
            ++seen;
        }
        return loads[b] < loads[a] ? b : a;
      }
      case RoutingPolicy::AffinityHash: {
        // Hash over *all* shards (not just routable ones) so the home
        // shard of a query never moves while the fleet is healthy;
        // walk forward around the ring when the home shard is out.
        const size_t home =
            static_cast<size_t>(affinity_lo % ok.size());
        for (size_t k = 0; k < ok.size(); ++k) {
            const size_t i = (home + k) % ok.size();
            if (ok[i])
                return i;
        }
        break;
      }
    }
    return SIZE_MAX;
}

// --------------------------------------------------------------------
// BackendShard

BackendShard::BackendShard(const SiriusPipeline &pipeline,
                           const ConcurrentServerConfig &config,
                           size_t index,
                           const ClusterHealthConfig &health,
                           EventLog *events)
    : server_(pipeline, config), index_(index),
      health_(index, health, events)
{
}

void
BackendShard::setAdminDown(bool down)
{
    adminDown_.store(down, std::memory_order_relaxed);
}

// --------------------------------------------------------------------
// ClusterRouter

/**
 * State shared by every leg (primary, failover, hedge) of one query.
 * One small mutex per query keeps the delivered/legs/hedge transitions
 * trivially race-free; a query runs a whole pipeline execution, so the
 * lock is nanoseconds against milliseconds of work.
 */
struct ClusterRouter::QueryState
{
    Query query;
    Completion done;
    uint64_t id = 0;
    uint64_t traceId = 0; ///< router-allocated, shared by every leg
    double submittedAt = 0.0;
    size_t primaryShard = 0;

    std::mutex m; ///< guards everything below
    bool delivered = false;
    bool closed = false; ///< in-flight slot released
    int legs = 0;
    int legsStarted = 0; ///< ever dispatched; indexes span-id blocks
    int failoversLeft = 0;
    int failovers = 0;
    bool hedgeFired = false;

    /**
     * The router's own trace context for this query (inert when the
     * trace id was not sampled). Route/route_leg spans are recorded
     * through it; span-id base 1<<30 keeps router ids disjoint from
     * every leg's block. TraceContext is not thread-safe, so all use
     * is under `m`.
     */
    TraceContext trace;
    uint32_t rootSpanId = 0;    ///< reserved for the "route" summary
    bool flightOffered = false; ///< completing offer() already made
};

ClusterRouter::ClusterRouter(const SiriusPipeline &pipeline,
                             ClusterConfig config)
    : pipeline_(pipeline), config_(std::move(config)),
      collector_(std::max<size_t>(config_.shard.traceCapacity, 1),
                 config_.shard.traceSampleRate, config_.shard.traceSeed)
{
    if (config_.shards == 0)
        fatal("ClusterRouter requires shards >= 1");
    rng_.reseed(config_.seed);
    shards_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; ++i) {
        ConcurrentServerConfig shard_config = config_.shard;
        // Distinct id blocks per shard keep a merged JSONL unambiguous.
        shard_config.traceIdOffset =
            config_.shard.traceIdOffset + i * 10000000ULL;
        if (i < config_.shardFaults.size() &&
            config_.shardFaults[i] != nullptr)
            shard_config.faults = config_.shardFaults[i];
        // The router owns the fleet SLO (per-leg + per-delivery feeds);
        // a shard-level tracker would double-count every leg.
        shard_config.slo = nullptr;
        // One virtual clock for the whole fleet (deadlines, batching
        // windows, hedge due-times all advance together).
        if (config_.clock != nullptr && shard_config.clock == nullptr)
            shard_config.clock = config_.clock;
        // Shards contribute legs to the shared recorder; the router
        // makes the completing offer at delivery.
        shard_config.flight = config_.flight;
        shards_.push_back(std::make_unique<BackendShard>(
            pipeline_, shard_config, i, config_.health,
            config_.events));
        // One clock for the whole fleet: stitched gap arithmetic
        // (route dispatch -> leg start) needs every shard's span
        // timestamps on the router's epoch.
        shards_.back()->server().alignTraceEpoch(collector_);
        routed_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
        failoversFrom_.push_back(
            std::make_unique<std::atomic<uint64_t>>(0));
    }
    // Under an injected virtual clock there is no timer thread: the
    // test (or sim executor) advances the clock and calls pollHedges().
    if (config_.hedgeSeconds > 0.0 && config_.shards > 1 &&
        config_.clock == nullptr)
        hedgeThread_ = std::thread([this] { hedgeLoop(); });
}

ClusterRouter::~ClusterRouter()
{
    {
        std::lock_guard<std::mutex> lock(hedgeMutex_);
        hedgeStop_ = true;
    }
    hedgeWake_.notify_all();
    if (hedgeThread_.joinable())
        hedgeThread_.join();
    drain();
}

size_t
ClusterRouter::pickShard(const Query &query, size_t avoid)
{
    // Routable set: healthy shards first; when none, fall back to
    // ejected (maybe-recovering) shards — never to admin-down ones,
    // which an operator is deliberately draining.
    std::vector<uint8_t> ok(shards_.size(), 0);
    size_t count = 0;
    for (const auto &shard : shards_) {
        if (shard->healthy() && shard->index() != avoid) {
            ok[shard->index()] = 1;
            ++count;
        }
    }
    if (count == 0) {
        for (const auto &shard : shards_) {
            if (!shard->adminDown() && shard->index() != avoid) {
                ok[shard->index()] = 1;
                ++count;
            }
        }
    }
    if (count == 0)
        return SIZE_MAX;

    std::vector<size_t> loads(shards_.size(), 0);
    for (const auto &shard : shards_)
        loads[shard->index()] = shard->outstanding();

    uint64_t turn = 0;
    if (config_.policy == RoutingPolicy::RoundRobin ||
        config_.policy == RoutingPolicy::LeastOutstanding)
        turn = rrCursor_.fetch_add(1, std::memory_order_relaxed);

    uint64_t affinity_lo = 0;
    if (config_.policy == RoutingPolicy::AffinityHash) {
        const CacheKey128 key =
            hashBytes128(query.text.data(), query.text.size());
        affinity_lo = key.lo;
    }

    if (config_.policy == RoutingPolicy::PowerOfTwo) {
        std::lock_guard<std::mutex> lock(rngMutex_);
        return chooseByPolicy(config_.policy, ok, count, loads, turn,
                              affinity_lo, rng_);
    }
    return chooseByPolicy(config_.policy, ok, count, loads, turn,
                          affinity_lo, rng_);
}

bool
ClusterRouter::dispatch(const std::shared_ptr<QueryState> &state,
                        size_t index, bool probe, const char *arm)
{
    BackendShard &shard = *shards_[index];
    uint32_t leg_span = 0;
    uint32_t leg_base = 0;
    {
        std::lock_guard<std::mutex> lock(state->m);
        if (state->closed)
            return false; // delivered + released while we raced here
        ++state->legs;
        // Each leg gets a reserved route_leg span id (recorded when
        // the leg completes) and a disjoint 2^20 span-id block for the
        // shard's own spans, so hedge/failover legs never collide.
        const int leg_index = state->legsStarted++;
        leg_span = state->trace.reserveSpanId();
        leg_base = static_cast<uint32_t>(leg_index + 1) << 20;
    }
    const double dispatched_at = nowSeconds();
    shard.noteDispatch();
    const bool ok = shard.server().submit(
        state->query,
        TraceBinding{state->traceId, leg_base, leg_span},
        [this, state, index, probe, arm, leg_span,
         dispatched_at](const SiriusResult &result) {
            onLegDone(state, index, probe, arm, leg_span,
                      dispatched_at, result);
        });
    if (!ok) {
        shard.noteComplete();
        std::lock_guard<std::mutex> lock(state->m);
        --state->legs;
        return false;
    }
    routed_[index]->fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ClusterRouter::recordLegSpan(const std::shared_ptr<QueryState> &state,
                             size_t index, const char *arm,
                             uint32_t leg_span, double dispatched_at,
                             bool won, const SiriusResult &result)
{
    std::lock_guard<std::mutex> lock(state->m);
    if (!state->trace.active())
        return;
    // A leg finishing after delivery (hedge loser) finds the trace
    // buffer already flushed; re-buffer just this span so the flight
    // recorder can merge it into the kept trace as a late partial.
    const bool late =
        state->flightOffered && config_.flight != nullptr;
    if (late)
        state->trace.bufferSpans();
    state->trace.recordReserved(
        leg_span, SpanKind::Route, "route_leg", dispatched_at,
        nowSeconds() - dispatched_at, state->rootSpanId,
        {{"arm", arm},
         {"shard", std::to_string(index)},
         {"won", won ? "1" : "0"},
         {"outcome", degradationName(result.degradation)}});
    if (late) {
        std::vector<SpanRecord> spans = state->trace.takeBuffered();
        for (const SpanRecord &span : spans)
            collector_.append(span);
        config_.flight->offerPartial(state->traceId,
                                     std::move(spans));
    }
}

void
ClusterRouter::onLegDone(const std::shared_ptr<QueryState> &state,
                         size_t index, bool probe, const char *arm,
                         uint32_t leg_span, double dispatched_at,
                         const SiriusResult &result)
{
    BackendShard &shard = *shards_[index];
    shard.noteComplete();
    const bool failed = result.degradation == Degradation::Failed;
    const bool bad = failed || result.deadlineExpired;
    if (probe)
        shard.recordProbeOutcome(!bad, nowSeconds());
    else
        shard.recordOutcome(bad, nowSeconds());
    // Fleet availability is judged per leg: a failed leg burns error
    // budget even when failover rescues the answer, so a shard outage
    // reaches the burn-rate alerts that the delivered-result counters
    // (kept clean by failover) would hide. Deadline misses are left to
    // the latency objective, which sees the delivered e2e below.
    if (config_.slo != nullptr)
        config_.slo->recordOutcome(!failed);

    bool try_failover = false;
    {
        std::lock_guard<std::mutex> lock(state->m);
        --state->legs;
        if (failed && !state->delivered && state->failoversLeft > 0) {
            --state->failoversLeft;
            try_failover = true;
        }
    }
    if (try_failover) {
        const size_t next = pickShard(state->query, index);
        if (next != SIZE_MAX && dispatch(state, next, false,
                                         "failover")) {
            failovers_.fetch_add(1, std::memory_order_relaxed);
            failoversFrom_[index]->fetch_add(1,
                                             std::memory_order_relaxed);
            recordLegSpan(state, index, arm, leg_span, dispatched_at,
                          false, result);
            std::lock_guard<std::mutex> lock(state->m);
            ++state->failovers;
            return; // the failover leg owns delivery now
        }
        try_failover = false; // nowhere to go: deliver the failure
    }

    bool do_deliver = false;
    bool hedged = false;
    int failover_count = 0;
    {
        std::lock_guard<std::mutex> lock(state->m);
        // A Failed result defers to a still-running leg (a hedge may
        // yet succeed); it is delivered only by the last leg standing.
        if (!state->delivered && (!failed || state->legs == 0)) {
            state->delivered = true;
            do_deliver = true;
            hedged = state->hedgeFired;
            failover_count = state->failovers;
        }
    }
    // The winner's route_leg must land in the trace buffer before the
    // completing flight offer below flushes it.
    recordLegSpan(state, index, arm, leg_span, dispatched_at,
                  do_deliver, result);
    if (do_deliver) {
        const double now = nowSeconds();
        const double e2e = now - state->submittedAt;
        if (hedged && index != state->primaryShard)
            hedgeWins_.fetch_add(1, std::memory_order_relaxed);
        outcomes_[static_cast<size_t>(result.degradation)].fetch_add(
            1, std::memory_order_relaxed);
        if (config_.slo != nullptr)
            config_.slo->recordLatency(e2e);
        {
            std::lock_guard<std::mutex> lock(state->m);
            if (state->trace.active()) {
                state->trace.recordReserved(
                    state->rootSpanId, SpanKind::Route, "route",
                    state->submittedAt, e2e, 0,
                    {{"shard", std::to_string(index)},
                     {"policy", routingPolicyName(config_.policy)},
                     {"failovers", std::to_string(failover_count)},
                     {"hedged", hedged ? "1" : "0"},
                     {"probe", probe ? "1" : "0"},
                     {"outcome",
                      degradationName(result.degradation)}});
                std::vector<SpanRecord> spans =
                    state->trace.takeBuffered();
                if (config_.flight != nullptr) {
                    for (const SpanRecord &span : spans)
                        collector_.append(span);
                    // The completing offer: merges the staged shard
                    // legs and makes the keep decision.
                    config_.flight->offer(state->traceId, e2e,
                                          std::move(spans));
                }
                state->flightOffered = true;
            }
        }
        if (state->done)
            state->done(result);
    }
    finishLeg(state);
}

void
ClusterRouter::finishLeg(const std::shared_ptr<QueryState> &state)
{
    {
        std::lock_guard<std::mutex> lock(state->m);
        if (state->legs != 0 || !state->delivered || state->closed)
            return;
        state->closed = true;
    }
    std::lock_guard<std::mutex> lock(inFlightMutex_);
    if (--inFlight_ == 0)
        inFlightZero_.notify_all();
}

bool
ClusterRouter::submit(const Query &query, Completion done)
{
    auto state = std::make_shared<QueryState>();
    state->query = query;
    state->done = std::move(done);
    state->id = nextQueryId_.fetch_add(1, std::memory_order_relaxed) + 1;
    // The router allocates the one trace id every leg shares. Shards
    // run the same (seed, rate) sampling hash, so their contexts keep
    // or drop the query exactly when the router's does.
    state->traceId = config_.shard.traceIdOffset + state->id;
    state->trace = TraceContext(collector_, state->traceId, 1u << 30);
    if (state->trace.active()) {
        if (config_.flight != nullptr)
            state->trace.bufferSpans();
        state->rootSpanId = state->trace.reserveSpanId();
    }
    state->submittedAt = nowSeconds();
    // A hedged query never also fails over: the hedge is its retry.
    state->failoversLeft =
        config_.hedgeSeconds > 0.0 && config_.shards > 1
        ? 0
        : config_.failoverRetries;

    {
        std::lock_guard<std::mutex> lock(inFlightMutex_);
        ++inFlight_;
    }

    // An ejected shard due for probing gets this query as its probe;
    // failover (or the surviving leg rule) protects the query if the
    // probe fails, so probing risks latency, never the answer.
    bool probe = false;
    size_t target = SIZE_MAX;
    for (const auto &shard : shards_) {
        if (shard->claimProbe(nowSeconds())) {
            target = shard->index();
            probe = true;
            // Probes may fail: give even hedged queries one failover.
            std::lock_guard<std::mutex> lock(state->m);
            state->failoversLeft =
                std::max(state->failoversLeft, 1);
            break;
        }
    }
    if (probe && !dispatch(state, target, true, "probe")) {
        shards_[target]->recordProbeOutcome(false, nowSeconds());
        probe = false;
        target = SIZE_MAX;
    }
    if (!probe) {
        target = pickShard(query, SIZE_MAX);
        // Spill over in load order when the picked queue is full.
        while (target != SIZE_MAX &&
               !dispatch(state, target, false, "primary")) {
            target = pickShard(query, target);
        }
        if (target == SIZE_MAX) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(inFlightMutex_);
            if (--inFlight_ == 0)
                inFlightZero_.notify_all();
            return false;
        }
    }
    state->primaryShard = target;
    accepted_.fetch_add(1, std::memory_order_relaxed);

    if (config_.hedgeSeconds > 0.0 && config_.shards > 1) {
        {
            std::lock_guard<std::mutex> lock(hedgeMutex_);
            hedgePending_.emplace(
                state->submittedAt + config_.hedgeSeconds, state);
        }
        hedgeWake_.notify_one();
    }
    return true;
}

SiriusResult
ClusterRouter::handle(const Query &query)
{
    std::promise<SiriusResult> promise;
    auto future = promise.get_future();
    const Completion done = [&promise](const SiriusResult &result) {
        promise.set_value(result);
    };
    // Closed-loop backpressure: wait for queue space instead of
    // shedding, and undo the rejection submit() counted meanwhile.
    while (!submit(query, done)) {
        rejected_.fetch_sub(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return future.get();
}

void
ClusterRouter::fireDueHedges(double now)
{
    std::unique_lock<std::mutex> lock(hedgeMutex_);
    while (!hedgePending_.empty() &&
           hedgePending_.begin()->first <= now) {
        auto weak = hedgePending_.begin()->second;
        hedgePending_.erase(hedgePending_.begin());
        lock.unlock();

        if (auto state = weak.lock()) {
            bool fire = false;
            {
                std::lock_guard<std::mutex> guard(state->m);
                if (!state->delivered && !state->closed &&
                    !state->hedgeFired) {
                    state->hedgeFired = true;
                    fire = true;
                }
            }
            if (fire) {
                const size_t next =
                    pickShard(state->query, state->primaryShard);
                if (next != SIZE_MAX &&
                    dispatch(state, next, false, "hedge"))
                    hedgesFired_.fetch_add(1,
                                           std::memory_order_relaxed);
            }
        }
        lock.lock();
    }
}

void
ClusterRouter::pollHedges()
{
    if (config_.clock == nullptr)
        return;
    fireDueHedges(nowSeconds());
}

void
ClusterRouter::hedgeLoop()
{
    std::unique_lock<std::mutex> lock(hedgeMutex_);
    while (!hedgeStop_) {
        if (hedgePending_.empty()) {
            hedgeWake_.wait(lock);
            continue;
        }
        const double due = hedgePending_.begin()->first;
        const double now = nowSeconds();
        if (due > now) {
            hedgeWake_.wait_for(
                lock, std::chrono::duration<double>(due - now));
            continue;
        }
        lock.unlock();
        fireDueHedges(now);
        lock.lock();
    }
}

void
ClusterRouter::drain()
{
    std::unique_lock<std::mutex> lock(inFlightMutex_);
    inFlightZero_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ClusterRouter::killShard(size_t index)
{
    shards_.at(index)->setAdminDown(true);
    logMessage(LogLevel::Warn, "cluster: shard " +
                                   std::to_string(index) +
                                   " administratively killed");
    if (config_.events != nullptr)
        config_.events->note(nowSeconds(), "shard_kill",
                             "shard " + std::to_string(index) +
                                 " administratively killed",
                             {{"shard", std::to_string(index)}});
}

void
ClusterRouter::reviveShard(size_t index)
{
    shards_.at(index)->setAdminDown(false);
    logMessage(LogLevel::Info, "cluster: shard " +
                                   std::to_string(index) +
                                   " administratively revived");
    if (config_.events != nullptr)
        config_.events->note(nowSeconds(), "shard_revive",
                             "shard " + std::to_string(index) +
                                 " administratively revived",
                             {{"shard", std::to_string(index)}});
}

void
ClusterRouter::setShardFaults(size_t index, bool enabled)
{
    if (index >= config_.shardFaults.size() ||
        config_.shardFaults[index] == nullptr)
        fatal("setShardFaults: shard " + std::to_string(index) +
              " has no injector in ClusterConfig::shardFaults");
    config_.shardFaults[index]->setEnabled(enabled);
    logMessage(enabled ? LogLevel::Warn : LogLevel::Info,
               "cluster: shard " + std::to_string(index) +
                   (enabled ? " fault injection armed (drill)"
                            : " fault injection disarmed (drill)"));
    if (config_.events != nullptr)
        config_.events->note(nowSeconds(), "drill",
                             "shard " + std::to_string(index) +
                                 (enabled ? " faults armed"
                                          : " faults disarmed"),
                             {{"shard", std::to_string(index)},
                              {"enabled", enabled ? "1" : "0"}});
}

namespace {

void
addCacheStats(CacheStats &into, const CacheStats &other)
{
    into.hits += other.hits;
    into.misses += other.misses;
    into.expired += other.expired;
    into.bypasses += other.bypasses;
    into.insertions += other.insertions;
    into.replaced += other.replaced;
    into.rejected += other.rejected;
    into.evictedLru += other.evictedLru;
    into.evictedExpired += other.evictedExpired;
    into.entries += other.entries;
    into.bytes += other.bytes;
}

} // namespace

ClusterStats
ClusterRouter::snapshot() const
{
    ClusterStats out;
    out.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        out.shards.push_back(shard->server().snapshot());
        const auto &s = out.shards.back();
        out.fleet.merge(s.server);
        addCacheStats(out.caches.acousticScores,
                      s.caches.acousticScores);
        addCacheStats(out.caches.answers, s.caches.answers);
        addCacheStats(out.caches.matches, s.caches.matches);
        out.ejections += shard->ejections();
        out.recoveries += shard->recoveries();
        out.probes += shard->probes();
        out.healthyShards += shard->healthy() ? 1 : 0;
        out.traceDropped += s.traceDropped;
    }
    out.traceDropped += collector_.dropped();
    if (config_.slo != nullptr)
        out.slo = config_.slo->snapshot();
    if (config_.flight != nullptr)
        out.flight = config_.flight->stats();
    if (config_.events != nullptr)
        out.events = config_.events->snapshot();
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.failovers = failovers_.load(std::memory_order_relaxed);
    out.hedgesFired = hedgesFired_.load(std::memory_order_relaxed);
    out.hedgeWins = hedgeWins_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kDegradationLevels; ++i)
        out.outcomes[i] = outcomes_[i].load(std::memory_order_relaxed);
    exportMetrics(out.metrics);
    out.routerSpans = collector_.snapshot();
    return out;
}

void
ClusterRouter::exportMetrics(MetricsRegistry &registry,
                             const MetricLabels &base) const
{
    const auto labeled = [&base](
        std::initializer_list<std::pair<std::string, std::string>>
            extra) {
        MetricLabels labels = base;
        for (const auto &kv : extra)
            labels.push_back(kv);
        return labels;
    };
    const std::string policy = routingPolicyName(config_.policy);

    registry.gauge("sirius_cluster_shards", base)
        .set(static_cast<double>(shards_.size()));
    registry
        .counter("sirius_trace_dropped_total",
                 labeled({{"collector", "router"}}))
        .add(collector_.dropped());
    if (config_.slo != nullptr)
        config_.slo->exportTo(registry, base);
    if (config_.flight != nullptr)
        config_.flight->exportTo(registry, base);
    if (config_.events != nullptr)
        config_.events->exportTo(registry, base);
    registry.counter("sirius_cluster_accepted_total", base)
        .add(accepted_.load(std::memory_order_relaxed));
    registry.counter("sirius_cluster_rejected_total", base)
        .add(rejected_.load(std::memory_order_relaxed));
    registry
        .counter("sirius_cluster_hedges_total",
                 labeled({{"outcome", "fired"}}))
        .add(hedgesFired_.load(std::memory_order_relaxed));
    registry
        .counter("sirius_cluster_hedges_total",
                 labeled({{"outcome", "win"}}))
        .add(hedgeWins_.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kDegradationLevels; ++i) {
        registry
            .counter("sirius_cluster_queries_total",
                     labeled({{"outcome",
                               degradationName(
                                   static_cast<Degradation>(i))}}))
            .add(outcomes_[i].load(std::memory_order_relaxed));
    }
    for (const auto &shard : shards_) {
        const std::string id = std::to_string(shard->index());
        shard->server().exportMetrics(
            registry, labeled({{"server", "shard" + id}}));
        registry
            .counter("sirius_cluster_routed_total",
                     labeled({{"shard", id}, {"policy", policy}}))
            .add(routed_[shard->index()]->load(
                std::memory_order_relaxed));
        registry
            .counter("sirius_cluster_failovers_total",
                     labeled({{"shard", id}}))
            .add(failoversFrom_[shard->index()]->load(
                std::memory_order_relaxed));
        registry
            .gauge("sirius_cluster_shard_healthy",
                   labeled({{"shard", id}}))
            .set(shard->healthy() ? 1.0 : 0.0);
        registry
            .counter("sirius_cluster_ejections_total",
                     labeled({{"shard", id}}))
            .add(shard->ejections());
        registry
            .counter("sirius_cluster_recoveries_total",
                     labeled({{"shard", id}}))
            .add(shard->recoveries());
        registry
            .counter("sirius_cluster_probes_total",
                     labeled({{"shard", id}}))
            .add(shard->probes());
    }
}

// --------------------------------------------------------------------
// Cluster load generators (the cluster-shaped twins of the single-
// server generators in concurrent_server.cc).

MeasuredLoadResult
runOpenLoop(ClusterRouter &router, double offered_qps, size_t requests,
            const ClusterLoadOptions &options)
{
    if (offered_qps <= 0.0)
        fatal("runOpenLoop: offered load must be positive");

    using Clock = std::chrono::steady_clock;
    const auto &queries = standardQuerySet();
    Rng rng(options.seed);
    const ZipfSampler zipf(queries.size(),
                           options.zipfSkew > 0.0 ? options.zipfSkew
                                                  : 0.0);
    Rng query_rng(options.seed ^ 0x5a1fULL);

    MeasuredLoadResult result;
    result.offeredQps = offered_qps;
    result.offered = requests;
    const auto before = router.snapshot();

    std::mutex sojourn_mutex;
    std::vector<double> sojourns;
    sojourns.reserve(requests);

    const auto start = Clock::now();
    double arrival = 0.0;
    uint64_t shed = 0;
    for (size_t i = 0; i < requests; ++i) {
        if (options.killShardAt != 0 && i + 1 == options.killShardAt) {
            if (options.killByFault)
                router.setShardFaults(options.killShard, true);
            else
                router.killShard(options.killShard);
        }
        if (options.reviveShardAt != 0 &&
            i + 1 == options.reviveShardAt) {
            if (options.killByFault)
                router.setShardFaults(options.killShard, false);
            else
                router.reviveShard(options.killShard);
        }
        double u = rng.uniform();
        while (u <= 1e-300)
            u = rng.uniform();
        arrival += -std::log(u) / offered_qps;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival)));
        const auto submitted = Clock::now();
        const size_t pick = options.zipfSkew > 0.0
            ? zipf.draw(query_rng)
            : i % queries.size();
        const bool admitted = router.submit(
            queries[pick],
            [&sojourn_mutex, &sojourns, submitted](const SiriusResult &) {
                const double s = std::chrono::duration<double>(
                                     Clock::now() - submitted)
                                     .count();
                std::lock_guard<std::mutex> lock(sojourn_mutex);
                sojourns.push_back(s);
            });
        if (!admitted)
            ++shed;
    }
    router.drain();

    result.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.rejected = shed;
    {
        std::lock_guard<std::mutex> lock(sojourn_mutex);
        result.sojournSeconds.addAll(sojourns);
        result.completed = sojourns.size();
    }
    result.achievedQps = result.elapsedSeconds > 0.0
        ? static_cast<double>(result.completed) / result.elapsedSeconds
        : 0.0;
    const auto after = router.snapshot();
    result.degraded = after.fleet.degraded - before.fleet.degraded +
        after.fleet.failed - before.fleet.failed;
    result.deadlineMisses =
        after.fleet.deadlineMisses - before.fleet.deadlineMisses;
    return result;
}

MeasuredLoadResult
runClosedLoop(ClusterRouter &router, size_t clients,
              size_t queries_per_client,
              const ClusterLoadOptions &options)
{
    using Clock = std::chrono::steady_clock;
    const auto &queries = standardQuerySet();
    const ZipfSampler zipf(queries.size(),
                           options.zipfSkew > 0.0 ? options.zipfSkew
                                                  : 0.0);

    MeasuredLoadResult result;
    result.offered =
        static_cast<uint64_t>(clients) * queries_per_client;
    const auto before = router.snapshot();

    std::mutex merge_mutex;
    std::atomic<size_t> issued{0};
    const size_t kill_at = options.killShardAt;
    const size_t revive_at = options.reviveShardAt;
    const auto start = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            Rng rng(options.seed + 0x9e3779b97f4a7c15ULL * (c + 1));
            std::vector<double> mine;
            mine.reserve(queries_per_client);
            for (size_t i = 0; i < queries_per_client; ++i) {
                const size_t seq =
                    issued.fetch_add(1, std::memory_order_relaxed) + 1;
                if (kill_at != 0 && seq == kill_at) {
                    if (options.killByFault)
                        router.setShardFaults(options.killShard,
                                              true);
                    else
                        router.killShard(options.killShard);
                }
                if (revive_at != 0 && seq == revive_at) {
                    if (options.killByFault)
                        router.setShardFaults(options.killShard,
                                              false);
                    else
                        router.reviveShard(options.killShard);
                }
                const size_t pick = options.zipfSkew > 0.0
                    ? zipf.draw(rng)
                    : (c * queries_per_client + i) % queries.size();
                Stopwatch watch;
                router.handle(queries[pick]);
                mine.push_back(watch.seconds());
            }
            std::lock_guard<std::mutex> lock(merge_mutex);
            result.sojournSeconds.addAll(mine);
        });
    }
    for (auto &t : pool)
        t.join();

    result.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    // Hedge legs whose primary already delivered may still be running;
    // the after-snapshot must not catch them mid-flight.
    router.drain();
    result.completed = result.sojournSeconds.count();
    result.achievedQps = result.elapsedSeconds > 0.0
        ? static_cast<double>(result.completed) / result.elapsedSeconds
        : 0.0;
    const auto after = router.snapshot();
    result.degraded = after.fleet.degraded - before.fleet.degraded +
        after.fleet.failed - before.fleet.failed;
    result.deadlineMisses =
        after.fleet.deadlineMisses - before.fleet.deadlineMisses;
    return result;
}

FleetProjection
projectClosedLoopFleet(const std::vector<double> &service_seconds,
                       size_t shards, size_t workers_per_shard,
                       size_t clients_per_shard,
                       size_t queries_per_client)
{
    FleetProjection out;
    if (service_seconds.empty() || shards == 0 ||
        workers_per_shard == 0 || clients_per_shard == 0)
        return out;

    SampleStats sojourns;
    double makespan = 0.0;
    for (size_t s = 0; s < shards; ++s) {
        // One independent node per shard: its own workers, its own
        // closed-loop clients, its own virtual clock.
        std::vector<double> server_free(workers_per_shard, 0.0);
        std::vector<double> client_ready(clients_per_shard, 0.0);
        std::vector<size_t> client_issued(clients_per_shard, 0);
        const size_t total = clients_per_shard * queries_per_client;
        for (size_t q = 0; q < total; ++q) {
            // Next client to issue: earliest ready (FIFO arrival).
            size_t client = 0;
            for (size_t c = 1; c < clients_per_shard; ++c) {
                if (client_issued[c] < queries_per_client &&
                    (client_issued[client] >= queries_per_client ||
                     client_ready[c] < client_ready[client]))
                    client = c;
            }
            size_t worker = 0;
            for (size_t w = 1; w < workers_per_shard; ++w) {
                if (server_free[w] < server_free[worker])
                    worker = w;
            }
            const size_t offset =
                s * clients_per_shard + client; // per-client phase
            const double service =
                service_seconds[(offset + client_issued[client]) %
                                service_seconds.size()];
            const double ready = client_ready[client];
            const double begin = std::max(ready, server_free[worker]);
            const double done = begin + service;
            sojourns.add(done - ready);
            client_ready[client] = done;
            server_free[worker] = done;
            ++client_issued[client];
            makespan = std::max(makespan, done);
        }
    }
    out.completed = sojourns.count();
    out.meanSojournSeconds = sojourns.mean();
    out.p99SojournSeconds = sojourns.percentile(99);
    out.aggregateQps = makespan > 0.0
        ? static_cast<double>(out.completed) / makespan
        : 0.0;
    return out;
}

} // namespace sirius::core
