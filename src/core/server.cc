#include "core/server.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"

namespace sirius::core {

void
ServerStats::record(const SiriusResult &result, double service_seconds)
{
    serviceSeconds.add(service_seconds);
    serviceHistogram.add(service_seconds);
    asrSeconds.add(result.timings.asr.total());
    qaSeconds.add(result.timings.qa.total());
    immSeconds.add(result.timings.imm.total());
    ++served;
    if (result.degradation == Degradation::Failed)
        ++failed;
    else if (result.queryClass == QueryClass::Action)
        ++actions;
    else
        ++answers;
    degradationCounts[static_cast<size_t>(result.degradation)]++;
    if (result.degraded() && result.degradation != Degradation::Failed) {
        ++degraded;
        degradedSeconds.add(service_seconds);
    }
    if (result.deadlineExpired)
        ++deadlineMisses;
    stageRetries += static_cast<uint64_t>(result.stageRetries);
}

void
ServerStats::recordQueueWait(double wait_seconds)
{
    queueWaitSeconds.add(wait_seconds);
}

void
ServerStats::merge(const ServerStats &other)
{
    served += other.served;
    actions += other.actions;
    answers += other.answers;
    degraded += other.degraded;
    failed += other.failed;
    deadlineMisses += other.deadlineMisses;
    stageRetries += other.stageRetries;
    for (size_t i = 0; i < degradationCounts.size(); ++i)
        degradationCounts[i] += other.degradationCounts[i];
    serviceSeconds.addAll(other.serviceSeconds.samples());
    serviceHistogram.merge(other.serviceHistogram);
    asrSeconds.merge(other.asrSeconds);
    qaSeconds.merge(other.qaSeconds);
    immSeconds.merge(other.immSeconds);
    degradedSeconds.merge(other.degradedSeconds);
    queueWaitSeconds.merge(other.queueWaitSeconds);
}

void
ServerStats::exportTo(MetricsRegistry &registry,
                      const MetricLabels &base) const
{
    const auto labeled = [&base](
        std::initializer_list<std::pair<std::string, std::string>>
            extra) {
        MetricLabels labels = base;
        for (const auto &kv : extra)
            labels.push_back(kv);
        return labels;
    };

    // Disjoint query outcomes: ok + degraded + failed == served.
    registry.counter("sirius_queries_total",
                     labeled({{"outcome", "ok"}}))
        .add(served - degraded - failed);
    registry.counter("sirius_queries_total",
                     labeled({{"outcome", "degraded"}}))
        .add(degraded);
    registry.counter("sirius_queries_total",
                     labeled({{"outcome", "failed"}}))
        .add(failed);
    registry.counter("sirius_query_pathway_total",
                     labeled({{"pathway", "action"}}))
        .add(actions);
    registry.counter("sirius_query_pathway_total",
                     labeled({{"pathway", "answer"}}))
        .add(answers);
    registry.counter("sirius_deadline_misses_total", base)
        .add(deadlineMisses);
    registry.counter("sirius_stage_retries_total", base)
        .add(stageRetries);
    for (size_t i = 0; i < degradationCounts.size(); ++i) {
        registry
            .counter("sirius_degradation_total",
                     labeled({{"rung",
                               degradationName(
                                   static_cast<Degradation>(i))}}))
            .add(degradationCounts[i]);
    }

    registry.histogram("sirius_service_seconds", base)
        .merge(serviceHistogram);
    registry.histogram("sirius_queue_wait_seconds", base)
        .merge(queueWaitSeconds);
    registry.histogram("sirius_degraded_service_seconds", base)
        .merge(degradedSeconds);
    registry.histogram("sirius_stage_seconds",
                       labeled({{"stage", "asr"}}))
        .merge(asrSeconds);
    registry.histogram("sirius_stage_seconds",
                       labeled({{"stage", "qa"}}))
        .merge(qaSeconds);
    registry.histogram("sirius_stage_seconds",
                       labeled({{"stage", "imm"}}))
        .merge(immSeconds);
}

SiriusServer::SiriusServer(const SiriusPipeline &pipeline)
    : pipeline_(pipeline)
{
}

SiriusResult
SiriusServer::handle(const Query &query)
{
    Stopwatch watch;
    SiriusResult result = pipeline_.process(query);
    stats_.record(result, watch.seconds());
    return result;
}

SiriusResult
SiriusServer::handle(const Query &query, const ProcessOptions &options)
{
    Stopwatch watch;
    SiriusResult result = pipeline_.process(query, options);
    stats_.record(result, watch.seconds());
    return result;
}

double
SiriusServer::serviceRate() const
{
    const double mean = stats_.serviceSeconds.mean();
    return mean > 0.0 ? 1.0 / mean : 0.0;
}

LoadTestResult
loadTest(SiriusServer &server, double offered_qps, size_t requests,
         uint64_t seed)
{
    if (offered_qps <= 0.0)
        fatal("loadTest: offered load must be positive");

    // Phase 1: measure real service times over the standard query set.
    std::vector<double> service_samples;
    for (const auto &query : standardQuerySet()) {
        server.handle(query);
        service_samples.push_back(
            server.stats().serviceSeconds.samples().back());
    }

    // Stability check against the measured mean.
    double mean_service = 0.0;
    for (double s : service_samples)
        mean_service += s;
    mean_service /= static_cast<double>(service_samples.size());
    if (offered_qps * mean_service >= 1.0)
        fatal("loadTest: offered load exceeds the server's capacity");

    // Phase 2: virtual-time Lindley recursion over Poisson arrivals with
    // the measured service times replayed round robin.
    Rng rng(seed);
    LoadTestResult result;
    result.offeredQps = offered_qps;
    double clock = 0.0, last_departure = 0.0, busy = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        double u = rng.uniform();
        while (u <= 1e-300)
            u = rng.uniform();
        clock += -std::log(u) / offered_qps;
        const double service =
            service_samples[i % service_samples.size()];
        const double start = std::max(clock, last_departure);
        last_departure = start + service;
        busy += service;
        result.sojournSeconds.add(last_departure - clock);
    }
    result.utilization = busy / last_departure;
    return result;
}

} // namespace sirius::core
