#include "core/concurrent_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"

namespace sirius::core {

ConcurrentServer::ConcurrentServer(const SiriusPipeline &pipeline,
                                   ConcurrentServerConfig config)
    : pipeline_(pipeline), config_(config),
      collector_(std::max<size_t>(config.traceCapacity, 1),
                 config.traceSampleRate, config.traceSeed),
      pool_(std::max<size_t>(config.workers, 1))
{
    if (config_.queueCapacity == 0)
        fatal("ConcurrentServer requires queueCapacity >= 1");
    if (config_.batching.enabled) {
        // The server's virtual clock (when set) covers batching too,
        // unless the batcher was given its own clock explicitly.
        if (config_.clock != nullptr &&
            config_.batching.clock == nullptr)
            config_.batching.clock = config_.clock;
        batcher_ = std::make_unique<BatchScheduler>(
            &pipeline.asr().scorer(), &pipeline.imm(), config_.batching);
    }
    if (config_.cache.enabled)
        caches_ = std::make_unique<PipelineCaches>(config_.cache);
}

ConcurrentServer::~ConcurrentServer()
{
    drain();
}

bool
ConcurrentServer::submit(const Query &query, Completion done)
{
    return submit(query, TraceBinding{}, std::move(done));
}

bool
ConcurrentServer::submit(const Query &query, const TraceBinding &binding,
                         Completion done)
{
    // Admission control: reserve a waiting slot or shed. The CAS loop
    // makes the bound exact under concurrent submitters.
    size_t waiting = queued_.load(std::memory_order_relaxed);
    do {
        if (waiting >= config_.queueCapacity) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    } while (!queued_.compare_exchange_weak(waiting, waiting + 1,
                                            std::memory_order_relaxed));
    const uint64_t seq = accepted_.fetch_add(1, std::memory_order_relaxed);
    // The deadline is anchored at admission, so time spent waiting in
    // the queue burns the same budget the pipeline stages check. The
    // trace context is anchored here too: its id is the admission
    // sequence number (or the router's id when the query is one leg of
    // a stitched cluster trace), and the sampling decision is made
    // before any work so an unsampled query never touches the collector
    // again.
    const Deadline deadline = config_.deadlineSeconds > 0.0
        ? (config_.clock != nullptr
               ? Deadline::afterManual(config_.deadlineSeconds,
                                       *config_.clock)
               : Deadline::after(config_.deadlineSeconds))
        : Deadline();
    const bool ownTrace = binding.traceId == 0;
    const uint64_t traceId =
        ownTrace ? config_.traceIdOffset + seq + 1 : binding.traceId;
    TraceContext trace(collector_, traceId, binding.spanIdBase,
                       binding.rootParentId);
    // The flight recorder wants whole traces: buffer this query's spans
    // so completion can hand the recorder one coherent copy.
    if (config_.flight != nullptr)
        trace.bufferSpans();
    const double admitted = nowSeconds();
    pool_.submit([this, query, deadline, trace, admitted, ownTrace,
                  done = std::move(done)] {
        // The request leaves the queue the moment a worker picks it up.
        queued_.fetch_sub(1, std::memory_order_relaxed);
        serve(query, deadline, trace, admitted, ownTrace, done);
    });
    return true;
}

SiriusResult
ConcurrentServer::handle(const Query &query)
{
    std::promise<SiriusResult> promise;
    auto future = promise.get_future();
    const Completion done = [&promise](const SiriusResult &result) {
        promise.set_value(result);
    };
    // Closed-loop callers apply backpressure rather than shedding: retry
    // until a queue slot frees up. Undo the rejection submit() counted,
    // since nothing was shed from the caller's point of view.
    while (!submit(query, done)) {
        rejected_.fetch_sub(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return future.get();
}

void
ConcurrentServer::serve(const Query &query, const Deadline &deadline,
                        TraceContext trace, double admitted_seconds,
                        bool own_trace, const Completion &done)
{
    ProcessOptions options;
    options.deadline = deadline;
    options.retry = config_.retry;
    options.faults = config_.faults;
    options.batcher = batcher_.get();
    options.caches = caches_.get();

    // Queue wait is measured for every query; for sampled ones it also
    // becomes the trace's first child span (opened at admission, closed
    // here at dispatch).
    const double dispatched = nowSeconds();
    const double queue_wait =
        std::max(0.0, dispatched - admitted_seconds);

    // Install the context for this thread: every Span the pipeline and
    // the service kernels open below lands in this query's trace, and
    // log lines it emits carry the trace id.
    ScopedTraceActivation activation(trace);
    // Span id 1 is reserved for the root query span, recorded last
    // (its duration is only known once the query completes).
    const uint32_t root = trace.openRoot();
    trace.recordSpan(SpanKind::QueueWait, "queue_wait",
                     admitted_seconds, queue_wait, root);

    Stopwatch watch;
    SiriusResult result = pipeline_.process(query, options);
    const double seconds = watch.seconds();
    // A query that completed past its deadline is a miss even when no
    // stage noticed (e.g. it beat every per-stage check by a hair).
    if (deadline.expired())
        result.deadlineExpired = true;

    const double total_seconds = nowSeconds() - admitted_seconds;
    trace.closeRoot(
        "query", admitted_seconds, total_seconds,
        {{"type", queryTypeName(query.type)},
         {"degradation", degradationName(result.degradation)},
         {"deadline_expired", result.deadlineExpired ? "1" : "0"},
         {"retries", std::to_string(result.stageRetries)},
         {"text", query.text}});

    // Flush the buffered trace: one copy is offered to the flight
    // recorder (a complete trace when this server owns it, a leg
    // contribution when a router does — the router's completing offer
    // follows its delivery), the original lands in the span ring. This
    // runs before done() so a router always finds the leg staged.
    if (config_.flight != nullptr && trace.active()) {
        std::vector<SpanRecord> spans = trace.takeBuffered();
        if (own_trace)
            config_.flight->offer(trace.traceId(), total_seconds, spans);
        else
            config_.flight->offerPartial(trace.traceId(), spans);
        for (SpanRecord &span : spans)
            collector_.append(std::move(span));
    }
    if (config_.slo != nullptr)
        config_.slo->record(total_seconds,
                            result.degradation != Degradation::Failed);

    const double staged = result.timings.total();
    profiler_.addSeconds("asr", result.timings.asr.total());
    profiler_.addSeconds("qa", result.timings.qa.total());
    profiler_.addSeconds("imm", result.timings.imm.total());
    profiler_.addSeconds("other", std::max(0.0, seconds - staged));

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.record(result, seconds);
        stats_.recordQueueWait(queue_wait);
    }
    if (done)
        done(result);
}

void
ConcurrentServer::drain()
{
    pool_.waitIdle();
}

ConcurrentServerStats
ConcurrentServer::snapshot() const
{
    ConcurrentServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out.server = stats_;
    }
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    exportMetrics(out.metrics);
    out.spans = collector_.snapshot();
    if (batcher_ != nullptr)
        out.batching = batcher_->snapshot();
    if (caches_ != nullptr)
        out.caches = caches_->snapshot();
    out.traceDropped = collector_.dropped();
    if (config_.slo != nullptr)
        out.slo = config_.slo->snapshot();
    if (config_.flight != nullptr)
        out.flight = config_.flight->stats();
    return out;
}

void
ConcurrentServer::exportMetrics(MetricsRegistry &registry,
                                const MetricLabels &base) const
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.exportTo(registry, base);
    }
    profiler_.exportTo(registry, base);
    simd::exportMetrics(registry, base);
    registry.counter("sirius_requests_accepted_total", base)
        .add(accepted_.load(std::memory_order_relaxed));
    registry.counter("sirius_requests_rejected_total", base)
        .add(rejected_.load(std::memory_order_relaxed));
    registry.gauge("sirius_queue_depth", base)
        .set(static_cast<double>(
            queued_.load(std::memory_order_relaxed)));
    registry.counter("sirius_trace_spans_total", base)
        .add(collector_.appended());
    registry.counter("sirius_trace_dropped_total", base)
        .add(collector_.dropped());
    registry.gauge("sirius_trace_sample_rate", base)
        .set(collector_.sampleRate());
    if (batcher_ != nullptr)
        batcher_->snapshot().exportTo(registry);
    if (caches_ != nullptr)
        caches_->exportTo(registry);
}

double
ConcurrentServer::serviceRate() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    const double mean = stats_.serviceSeconds.mean();
    return mean > 0.0 ? 1.0 / mean : 0.0;
}

MeasuredLoadResult
runOpenLoop(ConcurrentServer &server, double offered_qps, size_t requests,
            uint64_t seed, double zipf_skew)
{
    if (offered_qps <= 0.0)
        fatal("runOpenLoop: offered load must be positive");

    using Clock = std::chrono::steady_clock;
    const auto &queries = standardQuerySet();
    Rng rng(seed);
    // The skewed query draw gets its own stream so turning it on (or
    // changing the exponent) leaves the Poisson arrival times intact —
    // cache-on and cache-off runs then see identical arrival processes.
    const ZipfSampler zipf(queries.size(),
                           zipf_skew > 0.0 ? zipf_skew : 0.0);
    Rng query_rng(seed ^ 0x5a1fULL);

    MeasuredLoadResult result;
    result.offeredQps = offered_qps;
    result.offered = requests;
    const auto before = server.snapshot();

    std::mutex sojourn_mutex;
    std::vector<double> sojourns;
    sojourns.reserve(requests);

    const auto start = Clock::now();
    double arrival = 0.0;
    uint64_t shed = 0;
    for (size_t i = 0; i < requests; ++i) {
        double u = rng.uniform();
        while (u <= 1e-300)
            u = rng.uniform();
        arrival += -std::log(u) / offered_qps;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival)));
        const auto submitted = Clock::now();
        const size_t pick = zipf_skew > 0.0 ? zipf.draw(query_rng)
                                            : i % queries.size();
        const bool admitted = server.submit(
            queries[pick],
            [&sojourn_mutex, &sojourns, submitted](const SiriusResult &) {
                const double s = std::chrono::duration<double>(
                                     Clock::now() - submitted)
                                     .count();
                std::lock_guard<std::mutex> lock(sojourn_mutex);
                sojourns.push_back(s);
            });
        if (!admitted)
            ++shed;
    }
    server.drain(); // every completion callback has run past this point

    result.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.rejected = shed;
    {
        std::lock_guard<std::mutex> lock(sojourn_mutex);
        result.sojournSeconds.addAll(sojourns);
        result.completed = sojourns.size();
    }
    result.achievedQps = result.elapsedSeconds > 0.0
        ? static_cast<double>(result.completed) / result.elapsedSeconds
        : 0.0;
    const auto after = server.snapshot();
    result.degraded = after.server.degraded - before.server.degraded +
        after.server.failed - before.server.failed;
    result.deadlineMisses =
        after.server.deadlineMisses - before.server.deadlineMisses;
    return result;
}

MeasuredLoadResult
runClosedLoop(ConcurrentServer &server, size_t clients,
              size_t queries_per_client, double zipf_skew,
              uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    const auto &queries = standardQuerySet();
    const ZipfSampler zipf(queries.size(),
                           zipf_skew > 0.0 ? zipf_skew : 0.0);

    MeasuredLoadResult result;
    result.offered =
        static_cast<uint64_t>(clients) * queries_per_client;
    const auto before = server.snapshot();

    std::mutex merge_mutex;
    const auto start = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            Rng rng(seed + 0x9e3779b97f4a7c15ULL * (c + 1));
            std::vector<double> mine;
            mine.reserve(queries_per_client);
            for (size_t i = 0; i < queries_per_client; ++i) {
                const size_t pick = zipf_skew > 0.0
                    ? zipf.draw(rng)
                    : (c * queries_per_client + i) % queries.size();
                const auto &query = queries[pick];
                Stopwatch watch;
                server.handle(query);
                mine.push_back(watch.seconds());
            }
            std::lock_guard<std::mutex> lock(merge_mutex);
            result.sojournSeconds.addAll(mine);
        });
    }
    for (auto &t : pool)
        t.join();

    result.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.completed = result.sojournSeconds.count();
    result.achievedQps = result.elapsedSeconds > 0.0
        ? static_cast<double>(result.completed) / result.elapsedSeconds
        : 0.0;
    const auto after = server.snapshot();
    result.degraded = after.server.degraded - before.server.degraded +
        after.server.failed - before.server.failed;
    result.deadlineMisses =
        after.server.deadlineMisses - before.server.deadlineMisses;
    return result;
}

} // namespace sirius::core
