/**
 * @file
 * ShardHealthTracker: the rolling-window health state machine of one
 * cluster shard, factored out of BackendShard so the real ejection /
 * probed-recovery logic can run in two hosts:
 *
 *  - the live ClusterRouter tier (core/cluster.h), where outcomes are
 *    stamped with wall-clock seconds from serving threads, and
 *  - the deterministic simulation harness (src/sim), where the same
 *    code runs single-threaded on a virtual clock so chaos drills are
 *    byte-for-byte reproducible from a seed.
 *
 * The state machine: outcomes (bad = Failed result or deadline miss)
 * fill a rolling window; when the bad rate exceeds the threshold the
 * shard is ejected from routing, then probed with single live queries
 * after a cooldown, and rejoins after a run of consecutive probe
 * successes. All time is an explicit `now_seconds` parameter — the
 * tracker never reads a clock, which is exactly what makes it reusable
 * under virtual time.
 */

#ifndef SIRIUS_CORE_SHARD_HEALTH_H
#define SIRIUS_CORE_SHARD_HEALTH_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/slo.h"

namespace sirius::core {

/** Ejection and probed-recovery thresholds of one shard's health. */
struct ClusterHealthConfig
{
    /** Outcomes retained in the per-shard rolling window. */
    size_t window = 64;
    /** Outcomes required before the window can eject (avoids judging a
     *  shard on its first unlucky query). */
    size_t minSamples = 16;
    /**
     * Eject when bad outcomes (Failed results or deadline misses)
     * exceed this fraction of the window. The default is deliberately
     * high: transient overload makes misses, and ejecting a merely busy
     * shard shrinks the fleet exactly when it is needed most.
     */
    double ejectBadRate = 0.5;
    /** Cooldown before an ejected shard sees its first probe query. */
    double probeAfterSeconds = 0.05;
    /** Consecutive probe successes required to rejoin the fleet. */
    int recoveryProbes = 3;
};

/**
 * Rolling-window eject / probe / recover state of one shard.
 *
 * Thread-safe (the live router records outcomes from worker threads);
 * under the single-threaded simulator the mutex is uncontended and
 * costs nothing. Lifecycle transitions are written to the EventLog
 * (when one is attached) as `shard_eject` / `shard_recover` events.
 */
class ShardHealthTracker
{
  public:
    ShardHealthTracker(size_t index, const ClusterHealthConfig &health,
                       EventLog *events = nullptr);

    ShardHealthTracker(const ShardHealthTracker &) = delete;
    ShardHealthTracker &operator=(const ShardHealthTracker &) = delete;

    /** True while the shard is ejected from routing. */
    bool
    ejected() const
    {
        return ejectedFlag_.load(std::memory_order_relaxed);
    }

    uint64_t ejections() const { return ejections_.load(); }
    uint64_t recoveries() const { return recoveries_.load(); }
    uint64_t probes() const { return probes_.load(); }

    /**
     * Fold one outcome into the window; may eject. Outcomes arriving
     * while the shard is already ejected are ignored (queries in flight
     * at ejection time must not re-judge an empty window).
     */
    void recordOutcome(bool bad, double now_seconds);

    /**
     * True when this call won the right to route one probe query to
     * the ejected shard: the cooldown has passed, no other probe is in
     * flight, and @p admin_down is false (an operator draining a shard
     * must not have probes revive it).
     */
    bool claimProbe(double now_seconds, bool admin_down);

    /** Probe outcome: recover after a run of successes, else re-arm
     *  the cooldown. */
    void recordProbeOutcome(bool ok, double now_seconds);

  private:
    const size_t index_;
    const ClusterHealthConfig health_;
    EventLog *events_; ///< lifecycle events (eject/recover); may be null

    std::atomic<bool> ejectedFlag_{false}; ///< mirror of ejected_

    std::mutex mutex_; ///< guards the window + ejection state below
    std::vector<uint8_t> window_;
    size_t head_ = 0;
    size_t filled_ = 0;
    size_t bad_ = 0;
    bool ejected_ = false;
    double ejectedAt_ = 0.0;
    bool probeInFlight_ = false;
    int probeSuccesses_ = 0;

    std::atomic<uint64_t> ejections_{0};
    std::atomic<uint64_t> recoveries_{0};
    std::atomic<uint64_t> probes_{0};
};

} // namespace sirius::core

#endif // SIRIUS_CORE_SHARD_HEALTH_H
