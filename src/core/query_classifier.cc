#include "core/query_classifier.h"

#include "common/strings.h"
#include "nlp/tokenizer.h"

namespace sirius::core {

QueryClassifier::QueryClassifier()
{
    const char *patterns[] = {
        "^(who|whom|whose)(\\s|$)",
        "^(what|which|when|where|why|how)(\\s|$)",
        "^(is|are|was|were|do|does|did|can|could|will|would)(\\s|$)",
    };
    for (const char *p : patterns)
        questionPatterns_.emplace_back(p);
    imperativeVerbs_ = {
        "set",    "call",   "send",  "play", "open",  "turn",  "remind",
        "start",  "take",   "stop",  "navigate",      "add",   "show",
        "mute",   "read",   "pause", "resume",        "dial",  "text",
        "create", "delete", "cancel",
    };
}

QueryClass
QueryClassifier::classify(const std::string &transcript) const
{
    const std::string lower = toLower(transcript);
    for (const auto &pattern : questionPatterns_) {
        if (pattern.search(lower))
            return QueryClass::Question;
    }
    const auto tokens = nlp::tokenize(lower);
    if (!tokens.empty()) {
        for (const auto &verb : imperativeVerbs_) {
            if (tokens.front() == verb)
                return QueryClass::Action;
        }
    }
    // Default: treat unknown forms as questions so the user always gets
    // an answer attempt rather than a misfired device action.
    return QueryClass::Question;
}

} // namespace sirius::core
