/**
 * @file
 * Dynamic cross-query micro-batching between server admission and
 * kernel execution.
 *
 * The paper's throughput/TCO story (Figures 16-19) rests on amortizing
 * the dominant kernels — DNN/GMM acoustic scoring and descriptor
 * matching are 80%+ of cycles (Figure 9) and are exactly the kernels
 * that batch well. ConcurrentServer workers therefore do not call those
 * kernels directly: they enqueue work items here, a batch closes when
 * it reaches max_batch_size or has waited max_wait_us (or an item's
 * deadline is about to expire), and one blocked kernel call serves the
 * whole batch, scattering results back through futures. This is the
 * dynamic-batching shape used by modern inference servers.
 *
 * Correctness invariant: a batched kernel result is bitwise-identical
 * to the serial path on the same inputs (see the scoreBatch /
 * matchDatabaseBatch contracts); tests/test_batching.cc enforces it
 * differentially.
 */

#ifndef SIRIUS_CORE_BATCH_SCHEDULER_H
#define SIRIUS_CORE_BATCH_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "speech/asr_service.h"
#include "vision/imm_service.h"

namespace sirius::core {

/** Batching policy knobs (see docs/ARCHITECTURE.md "Batching"). */
struct BatchConfig
{
    bool enabled = true;       ///< server-level switch (--no-batching)
    size_t maxBatchSize = 8;   ///< close a batch at this many items
    double maxWaitSeconds = 200e-6; ///< close a partial batch after this
    /**
     * An item whose remaining deadline budget is at or below this slack
     * flushes its queue immediately — near-overdue queries must not sit
     * out a batching window they cannot afford.
     */
    double deadlineSlackSeconds = 0.005;

    /**
     * Virtual clock for deterministic tests; null = wall clock. When
     * set, enqueue timestamps and the timeout window are judged on this
     * clock and the scheduler thread never arms a wall-time wake-up —
     * the test (or sim executor) advances the clock and calls
     * flushTimedOut() to close overdue partial batches. Must outlive
     * the scheduler.
     */
    const ManualTime *clock = nullptr;
};

/** Why a batch was closed. */
enum class FlushReason
{
    Size,     ///< reached maxBatchSize
    Timeout,  ///< oldest item waited maxWaitSeconds
    Deadline, ///< an item's deadline was within the slack
    Shutdown, ///< scheduler destroyed with items still queued
};

/** Stable label for a FlushReason ("size", "timeout", ...). */
const char *flushReasonName(FlushReason reason);

/** Which batchable kernel a queue feeds. */
enum class BatchKernel
{
    Score, ///< acoustic scoring (DNN or GMM) — speech::AcousticScorer
    Match, ///< IMM descriptor-vs-database matching
};

/** Number of BatchKernel values (for per-kernel arrays). */
inline constexpr size_t kBatchKernels = 2;

/** Stable label for a BatchKernel ("score", "match"). */
const char *batchKernelName(BatchKernel kernel);

/** Point-in-time accounting for one kernel's queue. */
struct BatchKernelSnapshot
{
    uint64_t batches = 0; ///< batches executed
    uint64_t items = 0;   ///< items across all executed batches
    uint64_t flushes[4] = {0, 0, 0, 0}; ///< indexed by FlushReason
    LatencyHistogram waitSeconds; ///< per-item enqueue → execute wait

    /** Mean items per executed batch; 0 when none ran. */
    double
    meanOccupancy() const
    {
        return batches == 0
            ? 0.0
            : static_cast<double>(items) / static_cast<double>(batches);
    }
};

/** Snapshot of the scheduler's accounting across both kernels. */
struct BatchSnapshot
{
    BatchKernelSnapshot kernels[kBatchKernels]; ///< by BatchKernel

    /**
     * Export as labeled metrics: `sirius_batch_flushes_total{kernel=,
     * reason=}`, `sirius_batch_items_total{kernel=}`,
     * `sirius_batch_mean_occupancy{kernel=}`, and
     * `sirius_batch_wait_seconds{kernel=}`.
     */
    void exportTo(MetricsRegistry &registry) const;
};

/**
 * The micro-batching layer. One instance is shared by all workers of a
 * ConcurrentServer; it implements both service-side batching hooks so
 * the pipeline can hand it straight to AsrService::transcribe and
 * ImmService::match.
 *
 * Execution is leader-follower: the enqueuer that completes a batch
 * (size or deadline flush) executes it inline on its own thread, so
 * kernel work is never serialized through a single scheduler thread and
 * concurrent batches of different kernels still overlap. The scheduler
 * thread only handles timeout flushes — partial batches whose enqueuers
 * are all blocked waiting — which also makes a lone in-flight query's
 * added latency at most maxWaitSeconds.
 *
 * Thread-safe throughout; the destructor stops the scheduler thread and
 * drains still-queued items as Shutdown flushes so no waiter hangs.
 */
class BatchScheduler : public speech::FrameScoreBatcher,
                       public vision::DescriptorMatchBatcher
{
  public:
    /**
     * @param scorer acoustic scorer for Score batches; may be null when
     *        only Match batches will be submitted (and vice versa)
     * @param imm IMM service for Match batches; may be null
     * @param config batching policy; maxBatchSize is clamped to >= 1
     */
    BatchScheduler(const speech::AcousticScorer *scorer,
                   const vision::ImmService *imm, BatchConfig config);

    ~BatchScheduler() override;

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /** speech::FrameScoreBatcher: blocks until the batch executes. */
    speech::FrameScoreBatcher::Outcome
    scoreFrames(const std::vector<audio::FeatureVector> &frames,
                const Deadline &deadline) override;

    /** vision::DescriptorMatchBatcher: blocks until the batch executes. */
    vision::DescriptorMatchBatcher::Outcome
    matchAgainstDatabase(const std::vector<vision::Descriptor> &descriptors,
                         const Deadline &deadline) override;

    /** Copy of the current accounting (thread-safe). */
    BatchSnapshot snapshot() const;

    /** Items currently queued for @p kernel (thread-safe; for tests). */
    size_t pendingItems(BatchKernel kernel) const;

    /**
     * Clock-mode timeout pump: close every partial batch whose oldest
     * item has waited at least maxWaitSeconds, executing it on the
     * calling thread. Works on either clock, but it is the only way
     * timeout flushes happen when BatchConfig::clock is set.
     */
    void flushTimedOut();

    const BatchConfig &config() const { return config_; }

  private:
    using Clock = std::chrono::steady_clock;

    template <typename OutcomeT> struct Item
    {
        Deadline deadline;
        double enqueuedSeconds = 0.0; ///< on nowSeconds()'s epoch
        std::promise<OutcomeT> promise;
    };

    struct ScoreItem : Item<speech::FrameScoreBatcher::Outcome>
    {
        const std::vector<audio::FeatureVector> *frames = nullptr;
    };

    struct MatchItem : Item<vision::DescriptorMatchBatcher::Outcome>
    {
        const std::vector<vision::Descriptor> *descriptors = nullptr;
    };

    template <typename ItemT> struct Queue
    {
        std::vector<ItemT> pending;
        double oldestSeconds = 0.0; ///< enqueue time of pending.front()
    };

    /**
     * Enqueue @p item on @p queue under the mutex; if that closes the
     * batch (size or deadline slack) the caller becomes its leader and
     * the closed batch is returned for inline execution.
     */
    template <typename ItemT>
    bool enqueue(Queue<ItemT> &queue, ItemT &&item,
                 std::vector<ItemT> &batch, FlushReason &reason);

    void schedulerLoop();

    void executeScoreBatch(std::vector<ScoreItem> batch,
                           FlushReason reason);
    void executeMatchBatch(std::vector<MatchItem> batch,
                           FlushReason reason);

    /** Fold one executed batch into the accounting (takes the mutex). */
    void recordBatch(BatchKernel kernel, FlushReason reason,
                     size_t batch_items,
                     const std::vector<double> &wait_seconds);

    /** Seconds on the active clock: virtual when BatchConfig::clock is
     *  set, otherwise wall seconds since construction. */
    double nowSeconds() const;

    const speech::AcousticScorer *scorer_;
    const vision::ImmService *imm_;
    const BatchConfig config_;
    const Clock::time_point epoch_{Clock::now()}; ///< wall-mode zero

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    Queue<ScoreItem> scoreQueue_;
    Queue<MatchItem> matchQueue_;
    BatchKernelSnapshot stats_[kBatchKernels];

    std::thread scheduler_; ///< timeout flusher; last member: joins first
};

} // namespace sirius::core

#endif // SIRIUS_CORE_BATCH_SCHEDULER_H
