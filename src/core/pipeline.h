/**
 * @file
 * The end-to-end Sirius pipeline (Figure 2): speech in, natural-language
 * answer (or device action) out, with per-stage timing for every
 * characterization experiment in the paper.
 */

#ifndef SIRIUS_CORE_PIPELINE_H
#define SIRIUS_CORE_PIPELINE_H

#include <memory>
#include <string>

#include "core/intent.h"
#include "core/query_classifier.h"
#include "core/query_set.h"
#include "qa/qa_service.h"
#include "speech/asr_service.h"
#include "vision/imm_service.h"

namespace sirius::core {

/** Pipeline construction options. */
struct SiriusConfig
{
    speech::AsrBackend asrBackend = speech::AsrBackend::Gmm;
    speech::AsrConfig asr;       ///< backend field is overridden
    qa::QaConfig qa;
    vision::SurfConfig surf;
    int numLandmarks = 10;
};

/** Per-stage latency of one end-to-end query, in seconds. */
struct StageTimings
{
    speech::AsrTimings asr;
    qa::QaTimings qa;
    vision::ImmTimings imm;

    double
    total() const
    {
        return asr.total() + qa.total() + imm.total();
    }
};

/** Result of one end-to-end query. */
struct SiriusResult
{
    std::string transcript;    ///< ASR output
    QueryClass queryClass = QueryClass::Question;
    std::string action;        ///< device action text (VC pathway)
    Intent intent;             ///< parsed device action (VC pathway)
    std::string answer;        ///< QA answer (VQ / VIQ pathways)
    int matchedLandmark = -1;  ///< IMM result (VIQ pathway)
    std::string augmentedQuestion; ///< question after IMM substitution
    StageTimings timings;
};

/**
 * The assembled Sirius system. Construction trains the ASR acoustic
 * models, the QA CRF tagger, and pre-extracts the IMM descriptor
 * database, mirroring the deployment-time setup the paper describes.
 */
class SiriusPipeline
{
  public:
    /** Build and train every service. */
    static SiriusPipeline build(SiriusConfig config = {});

    /** Run a query-set entry end to end (synthesizes its speech). */
    SiriusResult process(const Query &query) const;

    /**
     * Run raw inputs end to end.
     * @param wave spoken query audio
     * @param image optional image (VIQ pathway); pass nullptr otherwise
     */
    SiriusResult process(const audio::Waveform &wave,
                         const vision::Image *image) const;

    /** Fraction of @p queries answered correctly (VC: classified). */
    double accuracy(const std::vector<Query> &queries) const;

    const speech::AsrService &asr() const { return *asr_; }
    const qa::QaService &qa() const { return *qa_; }
    const vision::ImmService &imm() const { return *imm_; }
    const SiriusConfig &config() const { return config_; }

  private:
    SiriusPipeline() = default;

    SiriusConfig config_;
    std::unique_ptr<speech::AsrService> asr_;
    std::unique_ptr<qa::QaService> qa_;
    std::unique_ptr<vision::ImmService> imm_;
    QueryClassifier classifier_;
    IntentParser intentParser_;

    /** Substitute "this <noun>" with the matched landmark's name. */
    static std::string augmentWithLandmark(const std::string &question,
                                           int landmark_id);
};

} // namespace sirius::core

#endif // SIRIUS_CORE_PIPELINE_H
