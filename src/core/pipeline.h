/**
 * @file
 * The end-to-end Sirius pipeline (Figure 2): speech in, natural-language
 * answer (or device action) out, with per-stage timing for every
 * characterization experiment in the paper.
 */

#ifndef SIRIUS_CORE_PIPELINE_H
#define SIRIUS_CORE_PIPELINE_H

#include <memory>
#include <string>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "core/intent.h"
#include "core/query_classifier.h"
#include "core/query_set.h"
#include "qa/qa_service.h"
#include "speech/asr_service.h"
#include "vision/imm_service.h"

namespace sirius::core {

/** Pipeline construction options. */
struct SiriusConfig
{
    speech::AsrBackend asrBackend = speech::AsrBackend::Gmm;
    speech::AsrConfig asr;       ///< backend field is overridden
    qa::QaConfig qa;
    vision::SurfConfig surf;
    int numLandmarks = 10;
};

/** Bounded retry with exponential backoff for a failed stage. */
struct RetryPolicy
{
    int maxRetries = 0;             ///< extra attempts after the first
    double backoffSeconds = 0.0005; ///< wait before the first retry
    double backoffMultiplier = 2.0; ///< wait growth per further retry
};

/**
 * How far a query slid down the Table-1 ladder (VC ⊂ VQ ⊂ VIQ) before
 * completing. The containment order gives every over-budget or faulted
 * query a natural fallback: drop IMM and a VIQ is still a valid VQ;
 * drop QA and what remains is a VC-level partial result (transcript and
 * classification, no answer). Failed means even ASR was lost, below
 * which there is nothing to deliver.
 */
enum class Degradation
{
    None = 0, ///< full service at the requested level
    ViqToVq,  ///< IMM shed: answered without the image
    VqToVc,   ///< QA shed: transcript + classification only
    ViqToVc,  ///< QA shed on a VIQ query (regardless of IMM's fate)
    Failed,   ///< ASR shed: no usable output at all
};

/** Number of Degradation levels (for per-level counters). */
inline constexpr size_t kDegradationLevels = 5;

/** Short name ("none", "viq->vq", "vq->vc", "viq->vc", "failed"). */
const char *degradationName(Degradation degradation);

class BatchScheduler;
class PipelineCaches;

/**
 * Robustness policy for one process() call: the latency budget, the
 * per-stage retry policy, and an optional fault injector (not owned;
 * shared across workers when set on a server).
 */
struct ProcessOptions
{
    Deadline deadline;               ///< unbounded by default
    RetryPolicy retry;
    FaultInjector *faults = nullptr; ///< nullptr = no injection
    /**
     * Cross-query micro-batcher for the dominant kernels (acoustic
     * scoring, IMM database matching); nullptr = serial kernels. Not
     * owned; shared across workers when set on a server. Results are
     * bitwise-identical either way (see core::BatchScheduler).
     */
    BatchScheduler *batcher = nullptr;
    /**
     * Per-layer result caches (acoustic scores, answers, image
     * matches); nullptr = no caching. Not owned; shared across workers
     * when set on a server. Keys are exact-content hashes, so cached
     * results are bitwise-identical to recomputed ones (see
     * core::PipelineCaches and docs/CACHING.md).
     */
    PipelineCaches *caches = nullptr;
};

/** Per-stage latency of one end-to-end query, in seconds. */
struct StageTimings
{
    speech::AsrTimings asr;
    qa::QaTimings qa;
    vision::ImmTimings imm;

    double
    total() const
    {
        return asr.total() + qa.total() + imm.total();
    }
};

/** Result of one end-to-end query. */
struct SiriusResult
{
    std::string transcript;    ///< ASR output
    QueryClass queryClass = QueryClass::Question;
    std::string action;        ///< device action text (VC pathway)
    Intent intent;             ///< parsed device action (VC pathway)
    std::string answer;        ///< QA answer (VQ / VIQ pathways)
    int matchedLandmark = -1;  ///< IMM result (VIQ pathway)
    std::string augmentedQuestion; ///< question after IMM substitution
    StageTimings timings;

    // Robustness outcome (all defaults when processed without options).
    Degradation degradation = Degradation::None;
    bool deadlineExpired = false; ///< budget ran out during processing
    int stageRetries = 0;         ///< stage retry attempts performed
    std::string shedStages;       ///< comma-separated, e.g. "imm,qa"

    /** True when at least one stage was shed (including Failed). */
    bool
    degraded() const
    {
        return degradation != Degradation::None;
    }
};

/**
 * The assembled Sirius system. Construction trains the ASR acoustic
 * models, the QA CRF tagger, and pre-extracts the IMM descriptor
 * database, mirroring the deployment-time setup the paper describes.
 */
class SiriusPipeline
{
  public:
    /** Build and train every service. */
    static SiriusPipeline build(SiriusConfig config = {});

    /** Run a query-set entry end to end (synthesizes its speech). */
    SiriusResult process(const Query &query) const;

    /**
     * Run a query-set entry under a robustness policy. An expired
     * deadline skips even the speech synthesis, so overdue requests
     * complete in microseconds instead of milliseconds.
     */
    SiriusResult process(const Query &query,
                         const ProcessOptions &options) const;

    /**
     * Run raw inputs end to end.
     * @param wave spoken query audio
     * @param image optional image (VIQ pathway); pass nullptr otherwise
     */
    SiriusResult process(const audio::Waveform &wave,
                         const vision::Image *image) const;

    /**
     * Run raw inputs under a robustness policy: each stage checks the
     * remaining deadline budget before starting (and cooperatively
     * inside, see the services' deadline parameters), failed stages are
     * retried per the policy, and when IMM or QA is lost the query is
     * downgraded along the Table-1 ladder (VIQ→VQ→VC) instead of
     * failing outright — the partial result records what was shed.
     */
    SiriusResult process(const audio::Waveform &wave,
                         const vision::Image *image,
                         const ProcessOptions &options) const;

    /** Fraction of @p queries answered correctly (VC: classified). */
    double accuracy(const std::vector<Query> &queries) const;

    const speech::AsrService &asr() const { return *asr_; }
    const qa::QaService &qa() const { return *qa_; }
    const vision::ImmService &imm() const { return *imm_; }
    const SiriusConfig &config() const { return config_; }

  private:
    SiriusPipeline() = default;

    SiriusResult processRobust(const audio::Waveform &wave,
                               const vision::Image *image,
                               const ProcessOptions &options) const;

    SiriusConfig config_;
    std::unique_ptr<speech::AsrService> asr_;
    std::unique_ptr<qa::QaService> qa_;
    std::unique_ptr<vision::ImmService> imm_;
    QueryClassifier classifier_;
    IntentParser intentParser_;

    /** Substitute "this <noun>" with the matched landmark's name. */
    static std::string augmentWithLandmark(const std::string &question,
                                           int landmark_id);
};

} // namespace sirius::core

#endif // SIRIUS_CORE_PIPELINE_H
