#include "core/intent.h"

#include "common/strings.h"

namespace sirius::core {

const char *
intentKindName(IntentKind kind)
{
    switch (kind) {
      case IntentKind::SetAlarm: return "set-alarm";
      case IntentKind::Call: return "call";
      case IntentKind::SendMessage: return "send-message";
      case IntentKind::PlayMusic: return "play-music";
      case IntentKind::StopMusic: return "stop-music";
      case IntentKind::OpenApp: return "open-app";
      case IntentKind::ToggleDevice: return "toggle-device";
      case IntentKind::Remind: return "remind";
      case IntentKind::StartTimer: return "start-timer";
      case IntentKind::TakePicture: return "take-picture";
      case IntentKind::AdjustVolume: return "adjust-volume";
      case IntentKind::Navigate: return "navigate";
      case IntentKind::AddToList: return "add-to-list";
      case IntentKind::ShowCalendar: return "show-calendar";
      case IntentKind::MuteNotifications: return "mute-notifications";
      case IntentKind::ReadMessages: return "read-messages";
      case IntentKind::Unknown: return "unknown";
    }
    return "?";
}

IntentParser::IntentParser()
{
    auto add = [this](IntentKind kind, const char *trigger,
                      std::vector<std::pair<std::string, const char *>>
                          slots) {
        Rule rule{kind, nlp::Regex(trigger), {}};
        for (const auto &[name, pattern] : slots)
            rule.slotPatterns.emplace_back(name, nlp::Regex(pattern));
        rules_.push_back(std::move(rule));
    };

    add(IntentKind::SetAlarm, "^set (my |an |the )?alarm",
        {{"time", "\\d+(:\\d+)?( ?(am|pm))?"}});
    add(IntentKind::Call, "^(call|dial|phone) ",
        {{"contact", "(call|dial|phone) (my )?\\w+"}});
    add(IntentKind::SendMessage, "^(send|text) ",
        {{"contact", "to \\w+$"}});
    add(IntentKind::StopMusic, "^(stop|pause) .*(music|player|song)",
        {});
    add(IntentKind::PlayMusic, "^play ",
        {{"genre", "(jazz|rock|classical|pop|blues)"}});
    add(IntentKind::OpenApp, "^(open|launch|start) .*(app|application)",
        {{"app", "(camera|mail|music|calendar|maps)"}});
    add(IntentKind::ToggleDevice, "^turn (on|off) ",
        {{"state", "(on|off)"},
         {"device", "(flashlight|wifi|bluetooth|light)"}});
    add(IntentKind::Remind, "^remind me ",
        {{"task", "to [a-z ]+$"}});
    add(IntentKind::StartTimer, "^(start|set) a timer",
        {{"duration", "\\d+|one|two|five|ten|twenty"}});
    add(IntentKind::TakePicture, "^take a (picture|photo|selfie)", {});
    add(IntentKind::AdjustVolume, "^turn (up|down) the volume",
        {{"direction", "(up|down)"}});
    add(IntentKind::Navigate, "^(navigate|directions|drive) ",
        {{"destination", "to [a-z ]+$"}});
    add(IntentKind::AddToList, "^add .* to my .*list",
        {{"item", "add [a-z ]+ to"}});
    add(IntentKind::ShowCalendar, "^show .*(calendar|schedule)", {});
    add(IntentKind::MuteNotifications, "^mute ", {});
    add(IntentKind::ReadMessages, "^read .*(message|mail|email)", {});
}

std::string
IntentParser::firstMatch(const nlp::Regex &pattern,
                         const std::string &text)
{
    size_t start = 0, length = 0;
    if (!pattern.findFirst(text, start, length))
        return "";
    return text.substr(start, length);
}

Intent
IntentParser::parse(const std::string &transcript) const
{
    Intent intent;
    intent.raw = transcript;
    const std::string lower = toLower(transcript);
    for (const auto &rule : rules_) {
        if (!rule.trigger.search(lower))
            continue;
        intent.kind = rule.kind;
        for (const auto &[name, pattern] : rule.slotPatterns) {
            const std::string value = firstMatch(pattern, lower);
            if (!value.empty())
                intent.slots[name] = value;
        }
        return intent;
    }
    return intent;
}

} // namespace sirius::core
