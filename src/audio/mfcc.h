/**
 * @file
 * MFCC feature extraction front end for the ASR service.
 *
 * Implements the standard chain: pre-emphasis, framing, Hamming window,
 * FFT power spectrum, mel-scale triangular filterbank, log compression,
 * and a type-II DCT keeping the first N cepstral coefficients.
 */

#ifndef SIRIUS_AUDIO_MFCC_H
#define SIRIUS_AUDIO_MFCC_H

#include <vector>

#include "audio/synthesizer.h"

namespace sirius::audio {

/** One acoustic feature vector. */
using FeatureVector = std::vector<float>;

/** MFCC extraction parameters. */
struct MfccConfig
{
    int frameSize = 400;   ///< samples per frame (25 ms @ 16 kHz)
    int frameShift = 160;  ///< hop size (10 ms @ 16 kHz)
    int numFilters = 26;   ///< mel filterbank size
    int numCoeffs = 13;    ///< cepstral coefficients kept
    double preEmphasis = 0.97;
    double lowFreqHz = 80.0;
    double highFreqHz = 7600.0;
};

/** Stateless MFCC extractor (thread-safe once constructed). */
class MfccExtractor
{
  public:
    explicit MfccExtractor(MfccConfig config = {}, int sample_rate = 16000);

    /** Extract one feature vector per frame of @p wave. */
    std::vector<FeatureVector> extract(const Waveform &wave) const;

    /** Feature dimensionality (numCoeffs). */
    int dimension() const { return config_.numCoeffs; }

    const MfccConfig &config() const { return config_; }

  private:
    MfccConfig config_;
    int sampleRate_;
    size_t fftSize_;
    std::vector<double> window_;
    // filterbank_[m] holds (binIndex, weight) pairs of filter m.
    std::vector<std::vector<std::pair<size_t, double>>> filterbank_;
    // DCT-II basis, filter-major: dctTable_[f * numCoeffs + k] =
    // cos(pi * k * (f + 0.5) / numFilters). Precomputed with the exact
    // expression the per-frame loop historically evaluated, so reading
    // the table is bitwise-neutral; the contiguous k-minor layout is
    // what the SIMD axpy kernel sweeps.
    std::vector<double> dctTable_;

    static double hzToMel(double hz);
    static double melToHz(double mel);
    void buildFilterbank();
    void buildDctTable();
};

} // namespace sirius::audio

#endif // SIRIUS_AUDIO_MFCC_H
