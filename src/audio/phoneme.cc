#include "audio/phoneme.h"

#include <cctype>

#include "common/logging.h"

namespace sirius::audio {

FormantSpec
formantFor(int id)
{
    if (id < 0 || id >= kNumPhonemes)
        panic("formantFor: phoneme id out of range");
    if (id == kSilencePhoneme)
        return {0.0, 0.0, 0.0, 0.0};
    // Spread formants over the speech band so every phoneme's MFCC
    // signature is distinct. A golden-ratio stride decorrelates f2/f3
    // from f1 across consecutive ids.
    const double t = static_cast<double>(id - 1);
    const double f1 = 260.0 + 12.0 * t;
    const double f2 = 900.0 + 1500.0 *
        (t * 0.6180339887498949 - static_cast<int>(t * 0.6180339887498949));
    const double f3 = 2400.0 + 1200.0 *
        (t * 0.3819660112501051 - static_cast<int>(t * 0.3819660112501051));
    return {f1, f2, f3, 0.9};
}

int
phonemeOf(char c)
{
    const auto u = static_cast<unsigned char>(c);
    const char l = static_cast<char>(std::tolower(u));
    if (l >= 'a' && l <= 'z')
        return 1 + (l - 'a');
    if (l >= '0' && l <= '9')
        return 27 + (l - '0');
    return -1;
}

char
graphemeOf(int id)
{
    if (id >= 1 && id <= 26)
        return static_cast<char>('a' + id - 1);
    if (id >= 27 && id <= 36)
        return static_cast<char>('0' + id - 27);
    return '.';
}

std::vector<int>
pronounce(const std::string &word)
{
    std::vector<int> out;
    out.reserve(word.size());
    for (char c : word) {
        const int p = phonemeOf(c);
        if (p >= 0)
            out.push_back(p);
    }
    return out;
}

} // namespace sirius::audio
