/**
 * @file
 * Voice codecs for the mobile-to-server hop.
 *
 * The paper's deployment sends *compressed* recordings of the user's
 * speech to the datacenter (Section 1, citing Siri/Google Now). Two
 * classic telephony codecs are implemented: G.711 mu-law (8-bit
 * logarithmic PCM) and IMA ADPCM (4-bit adaptive differential PCM),
 * giving 2x and 4x compression over 16-bit PCM respectively. The server
 * side decodes before feature extraction, exactly as the real pipeline
 * would.
 */

#ifndef SIRIUS_AUDIO_CODEC_H
#define SIRIUS_AUDIO_CODEC_H

#include <cstdint>
#include <vector>

#include "audio/synthesizer.h"

namespace sirius::audio {

/** G.711 mu-law: one byte per sample. */
struct MuLawCodec
{
    /** Encode [-1,1] samples to mu-law bytes. */
    static std::vector<uint8_t> encode(const Waveform &wave);

    /** Decode mu-law bytes back to a waveform. */
    static Waveform decode(const std::vector<uint8_t> &bytes,
                           int sample_rate = 16000);

    /** Encode one 16-bit sample. */
    static uint8_t encodeSample(int16_t pcm);

    /** Decode one byte. */
    static int16_t decodeSample(uint8_t mu);
};

/** IMA ADPCM: 4 bits per sample (two samples per byte). */
struct AdpcmCodec
{
    /** Encode [-1,1] samples to packed 4-bit ADPCM. */
    static std::vector<uint8_t> encode(const Waveform &wave);

    /**
     * Decode packed ADPCM back to a waveform.
     * @param sample_count number of samples originally encoded (the
     *        final nibble of an odd-length stream is padding)
     */
    static Waveform decode(const std::vector<uint8_t> &bytes,
                           size_t sample_count, int sample_rate = 16000);
};

/**
 * Signal-to-noise ratio (dB) of @p decoded against @p original —
 * the codec-quality metric used by the tests.
 */
double codecSnrDb(const Waveform &original, const Waveform &decoded);

} // namespace sirius::audio

#endif // SIRIUS_AUDIO_CODEC_H
