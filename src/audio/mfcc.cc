#include "audio/mfcc.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/fft.h"
#include "common/logging.h"
#include "common/simd.h"

namespace sirius::audio {

namespace {
constexpr double kPi = 3.141592653589793238462643;
} // namespace

MfccExtractor::MfccExtractor(MfccConfig config, int sample_rate)
    : config_(config), sampleRate_(sample_rate)
{
    if (config_.frameSize <= 0 || config_.frameShift <= 0)
        fatal("MfccExtractor: frame size/shift must be positive");
    fftSize_ = nextPowerOfTwo(static_cast<size_t>(config_.frameSize));
    window_.resize(static_cast<size_t>(config_.frameSize));
    for (int i = 0; i < config_.frameSize; ++i) {
        window_[static_cast<size_t>(i)] = 0.54 - 0.46 *
            std::cos(2.0 * kPi * i / (config_.frameSize - 1));
    }
    buildFilterbank();
    buildDctTable();
}

void
MfccExtractor::buildDctTable()
{
    const auto m = static_cast<double>(config_.numFilters);
    const auto num_coeffs = static_cast<size_t>(config_.numCoeffs);
    dctTable_.resize(static_cast<size_t>(config_.numFilters) *
                     num_coeffs);
    for (int f = 0; f < config_.numFilters; ++f) {
        for (int k = 0; k < config_.numCoeffs; ++k) {
            dctTable_[static_cast<size_t>(f) * num_coeffs +
                      static_cast<size_t>(k)] =
                std::cos(kPi * k * (f + 0.5) / m);
        }
    }
}

double
MfccExtractor::hzToMel(double hz)
{
    return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double
MfccExtractor::melToHz(double mel)
{
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

void
MfccExtractor::buildFilterbank()
{
    const size_t bins = fftSize_ / 2 + 1;
    const double mel_lo = hzToMel(config_.lowFreqHz);
    const double mel_hi = hzToMel(std::min(config_.highFreqHz,
                                           sampleRate_ / 2.0));
    const int m = config_.numFilters;

    // m + 2 equally spaced mel points define m triangular filters.
    std::vector<double> centers_hz(static_cast<size_t>(m) + 2);
    for (int i = 0; i < m + 2; ++i) {
        centers_hz[static_cast<size_t>(i)] = melToHz(
            mel_lo + (mel_hi - mel_lo) * i / (m + 1));
    }
    auto hz_of_bin = [this](size_t bin) {
        return static_cast<double>(bin) * sampleRate_ /
            static_cast<double>(fftSize_);
    };

    filterbank_.assign(static_cast<size_t>(m), {});
    for (int f = 0; f < m; ++f) {
        const double left = centers_hz[static_cast<size_t>(f)];
        const double center = centers_hz[static_cast<size_t>(f) + 1];
        const double right = centers_hz[static_cast<size_t>(f) + 2];
        for (size_t bin = 0; bin < bins; ++bin) {
            const double hz = hz_of_bin(bin);
            double w = 0.0;
            if (hz > left && hz < center)
                w = (hz - left) / (center - left);
            else if (hz >= center && hz < right)
                w = (right - hz) / (right - center);
            if (w > 0.0)
                filterbank_[static_cast<size_t>(f)].emplace_back(bin, w);
        }
    }
}

std::vector<FeatureVector>
MfccExtractor::extract(const Waveform &wave) const
{
    std::vector<FeatureVector> features;
    const auto &pcm = wave.samples;
    const auto frame_size = static_cast<size_t>(config_.frameSize);
    const auto shift = static_cast<size_t>(config_.frameShift);
    if (pcm.size() < frame_size)
        return features;

    const size_t bins = fftSize_ / 2 + 1;
    const auto num_coeffs = static_cast<size_t>(config_.numCoeffs);
    std::vector<std::complex<double>> buf(fftSize_);
    std::vector<double> power(bins);
    std::vector<double> filter_energy(
        static_cast<size_t>(config_.numFilters));
    std::vector<double> cepstra(num_coeffs);

    for (size_t start = 0; start + frame_size <= pcm.size();
         start += shift) {
        // Pre-emphasis + Hamming window into the (zero-padded) FFT buffer.
        std::fill(buf.begin(), buf.end(), std::complex<double>(0.0, 0.0));
        for (size_t i = 0; i < frame_size; ++i) {
            const double prev = (start + i) > 0 ? pcm[start + i - 1] : 0.0;
            const double emphasized = pcm[start + i] -
                config_.preEmphasis * prev;
            buf[i] = {emphasized * window_[i], 0.0};
        }
        fft(buf);

        // Power spectrum (the re^2 + im^2 kernel) in one vector sweep;
        // each bin's value is exactly the std::norm(buf[bin]) the mel
        // loop historically computed inline.
        simd::kernels().complexNormF64(
            reinterpret_cast<const double *>(buf.data()), bins,
            power.data());

        // Mel filterbank energies. The triangle sweep itself stays
        // scalar: filters hold sparse (bin, weight) runs, and each
        // filter is a serial reduction.
        for (size_t f = 0; f < filterbank_.size(); ++f) {
            double acc = 0.0;
            for (const auto &[bin, weight] : filterbank_[f])
                acc += weight * power[bin];
            filter_energy[f] = std::log(acc + 1e-10);
        }

        // DCT-II to cepstral coefficients: coefficient lanes accumulate
        // side by side, each still summing filters f ascending —
        // cepstra[k] += energy[f] * dctTable_[f][k].
        std::fill(cepstra.begin(), cepstra.end(), 0.0);
        for (size_t f = 0; f < filterbank_.size(); ++f) {
            simd::kernels().axpyF64(cepstra.data(),
                                    dctTable_.data() + f * num_coeffs,
                                    filter_energy[f], num_coeffs);
        }
        FeatureVector coeffs(num_coeffs);
        for (size_t k = 0; k < num_coeffs; ++k)
            coeffs[k] = static_cast<float>(cepstra[k]);
        features.push_back(std::move(coeffs));
    }
    return features;
}

} // namespace sirius::audio
