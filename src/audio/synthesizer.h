/**
 * @file
 * Formant speech synthesizer producing PCM waveforms for query text.
 */

#ifndef SIRIUS_AUDIO_SYNTHESIZER_H
#define SIRIUS_AUDIO_SYNTHESIZER_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::audio {

/** A mono PCM waveform. */
struct Waveform
{
    std::vector<double> samples; ///< amplitude in [-1, 1]
    int sampleRate = 16000;

    /** Duration in seconds. */
    double seconds() const
    {
        return static_cast<double>(samples.size()) / sampleRate;
    }
};

/** Synthesis parameters. */
struct SynthesizerConfig
{
    int sampleRate = 16000;
    double phonemeSeconds = 0.06;   ///< duration of one phoneme
    double wordGapSeconds = 0.05;   ///< silence between words
    double noiseLevel = 0.015;      ///< additive white noise amplitude
    uint64_t noiseSeed = 7;         ///< seed for the noise stream
};

/**
 * Deterministic text-to-waveform synthesizer.
 *
 * Each phoneme renders as the sum of its three formant sinusoids under a
 * raised-cosine amplitude envelope; a small amount of seeded white noise
 * makes the acoustic-model training problem non-degenerate.
 */
class SpeechSynthesizer
{
  public:
    explicit SpeechSynthesizer(SynthesizerConfig config = {});

    /** Render @p text ([a-z0-9 ] after lower-casing) to a waveform. */
    Waveform synthesize(const std::string &text) const;

    /**
     * Ground-truth phoneme id for every sample frame of length
     * @p frame_shift samples, aligned with the waveform from
     * synthesize(). Used to build acoustic-model training labels.
     */
    std::vector<int> frameLabels(const std::string &text,
                                 int frame_shift) const;

    const SynthesizerConfig &config() const { return config_; }

  private:
    SynthesizerConfig config_;

    /** Phoneme sequence with interleaved silence for @p text. */
    std::vector<int> phonemeTrack(const std::string &text) const;
};

} // namespace sirius::audio

#endif // SIRIUS_AUDIO_SYNTHESIZER_H
