/**
 * @file
 * Phoneme inventory for the synthetic speech front end.
 *
 * Substitution note (see DESIGN.md): we do not have the paper's recorded
 * human queries, so speech is synthesized. Each letter/digit grapheme maps
 * to one "phoneme" with a unique formant signature (three sinusoid
 * frequencies). The acoustic models are trained on features extracted from
 * the same synthesis process, so recognition genuinely runs end to end:
 * waveform -> MFCC -> GMM/DNN-scored HMM -> Viterbi -> text.
 */

#ifndef SIRIUS_AUDIO_PHONEME_H
#define SIRIUS_AUDIO_PHONEME_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::audio {

/** Index of the silence phoneme. */
constexpr int kSilencePhoneme = 0;

/** Total phoneme count: silence + 26 letters + 10 digits. */
constexpr int kNumPhonemes = 37;

/** Three-formant acoustic signature of one phoneme. */
struct FormantSpec
{
    double f1;   ///< first formant, Hz
    double f2;   ///< second formant, Hz
    double f3;   ///< third formant, Hz
    double gain; ///< overall amplitude in [0, 1]
};

/** Formant signature for phoneme @p id (0 <= id < kNumPhonemes). */
FormantSpec formantFor(int id);

/** Phoneme id of grapheme @p c, or -1 if @p c is not [a-z0-9]. */
int phonemeOf(char c);

/** Grapheme for a phoneme id (inverse of phonemeOf; '.' for silence). */
char graphemeOf(int id);

/**
 * Word pronunciation: one phoneme per grapheme; non-alphanumeric
 * characters are skipped.
 */
std::vector<int> pronounce(const std::string &word);

} // namespace sirius::audio

#endif // SIRIUS_AUDIO_PHONEME_H
