#include "audio/codec.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sirius::audio {

namespace {

constexpr int kMuLawBias = 0x84;
constexpr int kMuLawClip = 32635;

int16_t
toPcm16(double sample)
{
    const double clamped = std::clamp(sample, -1.0, 1.0);
    return static_cast<int16_t>(std::lround(clamped * 32767.0));
}

double
fromPcm16(int16_t pcm)
{
    return static_cast<double>(pcm) / 32767.0;
}

// IMA ADPCM tables.
const int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

const int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                             -1, -1, -1, -1, 2, 4, 6, 8};

struct AdpcmState
{
    int predictor = 0;
    int index = 0;

    uint8_t
    encodeSample(int16_t pcm)
    {
        const int step = kStepTable[index];
        int diff = pcm - predictor;
        uint8_t code = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        int delta = step >> 3;
        if (diff >= step) {
            code |= 4;
            diff -= step;
            delta += step;
        }
        if (diff >= step >> 1) {
            code |= 2;
            diff -= step >> 1;
            delta += step >> 1;
        }
        if (diff >= step >> 2) {
            code |= 1;
            delta += step >> 2;
        }
        predictor += (code & 8) ? -delta : delta;
        predictor = std::clamp(predictor, -32768, 32767);
        index = std::clamp(index + kIndexTable[code], 0, 88);
        return code;
    }

    int16_t
    decodeSample(uint8_t code)
    {
        const int step = kStepTable[index];
        int delta = step >> 3;
        if (code & 4)
            delta += step;
        if (code & 2)
            delta += step >> 1;
        if (code & 1)
            delta += step >> 2;
        predictor += (code & 8) ? -delta : delta;
        predictor = std::clamp(predictor, -32768, 32767);
        index = std::clamp(index + kIndexTable[code], 0, 88);
        return static_cast<int16_t>(predictor);
    }
};

} // namespace

uint8_t
MuLawCodec::encodeSample(int16_t pcm)
{
    int sign = (pcm >> 8) & 0x80;
    int magnitude = sign ? -pcm : pcm;
    magnitude = std::min(magnitude + kMuLawBias, kMuLawClip + kMuLawBias);

    int exponent = 7;
    for (int mask = 0x4000; (magnitude & mask) == 0 && exponent > 0;
         mask >>= 1) {
        --exponent;
    }
    const int mantissa = (magnitude >> (exponent + 3)) & 0x0F;
    return static_cast<uint8_t>(~(sign | (exponent << 4) | mantissa));
}

int16_t
MuLawCodec::decodeSample(uint8_t mu)
{
    mu = static_cast<uint8_t>(~mu);
    const int sign = mu & 0x80;
    const int exponent = (mu >> 4) & 0x07;
    const int mantissa = mu & 0x0F;
    int magnitude = ((mantissa << 3) + kMuLawBias) << exponent;
    magnitude -= kMuLawBias;
    return static_cast<int16_t>(sign ? -magnitude : magnitude);
}

std::vector<uint8_t>
MuLawCodec::encode(const Waveform &wave)
{
    std::vector<uint8_t> out;
    out.reserve(wave.samples.size());
    for (double s : wave.samples)
        out.push_back(encodeSample(toPcm16(s)));
    return out;
}

Waveform
MuLawCodec::decode(const std::vector<uint8_t> &bytes, int sample_rate)
{
    Waveform wave;
    wave.sampleRate = sample_rate;
    wave.samples.reserve(bytes.size());
    for (uint8_t b : bytes)
        wave.samples.push_back(fromPcm16(decodeSample(b)));
    return wave;
}

std::vector<uint8_t>
AdpcmCodec::encode(const Waveform &wave)
{
    std::vector<uint8_t> out;
    out.reserve(wave.samples.size() / 2 + 1);
    AdpcmState state;
    uint8_t pending = 0;
    bool half = false;
    for (double s : wave.samples) {
        const uint8_t code = state.encodeSample(toPcm16(s));
        if (!half) {
            pending = code;
            half = true;
        } else {
            out.push_back(static_cast<uint8_t>(pending | (code << 4)));
            half = false;
        }
    }
    if (half)
        out.push_back(pending);
    return out;
}

Waveform
AdpcmCodec::decode(const std::vector<uint8_t> &bytes, size_t sample_count,
                   int sample_rate)
{
    Waveform wave;
    wave.sampleRate = sample_rate;
    wave.samples.reserve(sample_count);
    AdpcmState state;
    for (uint8_t b : bytes) {
        if (wave.samples.size() < sample_count) {
            wave.samples.push_back(
                fromPcm16(state.decodeSample(b & 0x0F)));
        }
        if (wave.samples.size() < sample_count) {
            wave.samples.push_back(
                fromPcm16(state.decodeSample((b >> 4) & 0x0F)));
        }
    }
    return wave;
}

double
codecSnrDb(const Waveform &original, const Waveform &decoded)
{
    const size_t n = std::min(original.samples.size(),
                              decoded.samples.size());
    if (n == 0)
        fatal("codecSnrDb: empty waveforms");
    double signal = 0.0, noise = 0.0;
    for (size_t i = 0; i < n; ++i) {
        signal += original.samples[i] * original.samples[i];
        const double err = original.samples[i] - decoded.samples[i];
        noise += err * err;
    }
    if (noise <= 0.0)
        return 120.0; // effectively lossless
    return 10.0 * std::log10(signal / noise);
}

} // namespace sirius::audio
