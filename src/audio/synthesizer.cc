#include "audio/synthesizer.h"

#include <cmath>

#include "audio/phoneme.h"
#include "common/rng.h"
#include "common/strings.h"

namespace sirius::audio {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;
} // namespace

SpeechSynthesizer::SpeechSynthesizer(SynthesizerConfig config)
    : config_(config)
{
}

std::vector<int>
SpeechSynthesizer::phonemeTrack(const std::string &text) const
{
    // Leading silence, per-word letter phonemes, inter-word silence.
    std::vector<int> track;
    track.push_back(kSilencePhoneme);
    for (const auto &word : split(toLower(text))) {
        for (int p : pronounce(word))
            track.push_back(p);
        track.push_back(kSilencePhoneme);
    }
    return track;
}

Waveform
SpeechSynthesizer::synthesize(const std::string &text) const
{
    const auto track = phonemeTrack(text);
    const int rate = config_.sampleRate;
    const auto phoneme_len = static_cast<size_t>(
        config_.phonemeSeconds * rate);
    const auto gap_len = static_cast<size_t>(
        config_.wordGapSeconds * rate);

    Waveform wave;
    wave.sampleRate = rate;
    Rng noise(config_.noiseSeed);

    for (int phoneme : track) {
        const size_t len =
            (phoneme == kSilencePhoneme) ? gap_len : phoneme_len;
        const FormantSpec spec = formantFor(phoneme);
        for (size_t i = 0; i < len; ++i) {
            const double t = static_cast<double>(i) / rate;
            // Raised-cosine envelope avoids clicks at phoneme edges.
            const double env = 0.5 * (1.0 - std::cos(
                kTwoPi * static_cast<double>(i) /
                static_cast<double>(len)));
            double s = 0.0;
            if (phoneme != kSilencePhoneme) {
                s = spec.gain * env *
                    (0.55 * std::sin(kTwoPi * spec.f1 * t) +
                     0.30 * std::sin(kTwoPi * spec.f2 * t) +
                     0.15 * std::sin(kTwoPi * spec.f3 * t));
            }
            s += config_.noiseLevel * (noise.uniform() * 2.0 - 1.0);
            wave.samples.push_back(s);
        }
    }
    return wave;
}

std::vector<int>
SpeechSynthesizer::frameLabels(const std::string &text,
                               int frame_shift) const
{
    const auto track = phonemeTrack(text);
    const int rate = config_.sampleRate;
    const auto phoneme_len = static_cast<size_t>(
        config_.phonemeSeconds * rate);
    const auto gap_len = static_cast<size_t>(
        config_.wordGapSeconds * rate);

    // Per-sample phoneme labels, then downsample to frame starts.
    std::vector<int> per_sample;
    for (int phoneme : track) {
        const size_t len =
            (phoneme == kSilencePhoneme) ? gap_len : phoneme_len;
        per_sample.insert(per_sample.end(), len, phoneme);
    }
    std::vector<int> labels;
    for (size_t start = 0; start + static_cast<size_t>(frame_shift) <=
             per_sample.size(); start += static_cast<size_t>(frame_shift)) {
        // Label a frame by its center sample.
        labels.push_back(per_sample[start + frame_shift / 2]);
    }
    return labels;
}

} // namespace sirius::audio
