/**
 * @file
 * Delta (velocity) and delta-delta (acceleration) feature appending.
 *
 * Production ASR front ends (Sphinx included) extend static cepstra with
 * first- and second-order time derivatives, tripling the feature
 * dimensionality. Implemented as the standard regression formula over a
 * +/-N frame window with edge replication.
 */

#ifndef SIRIUS_AUDIO_DELTA_H
#define SIRIUS_AUDIO_DELTA_H

#include <vector>

#include "audio/mfcc.h"

namespace sirius::audio {

/**
 * First-order regression deltas of a feature sequence.
 * @param features frame-major static features
 * @param window regression half-width N (>= 1)
 */
std::vector<FeatureVector>
computeDeltas(const std::vector<FeatureVector> &features, int window = 2);

/**
 * Append delta and delta-delta coefficients to every frame, returning
 * frames of triple width: [static | delta | delta-delta].
 */
std::vector<FeatureVector>
appendDeltas(const std::vector<FeatureVector> &features, int window = 2);

} // namespace sirius::audio

#endif // SIRIUS_AUDIO_DELTA_H
