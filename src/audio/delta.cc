#include "audio/delta.h"

#include <algorithm>

#include "common/logging.h"

namespace sirius::audio {

std::vector<FeatureVector>
computeDeltas(const std::vector<FeatureVector> &features, int window)
{
    if (window < 1)
        fatal("computeDeltas: window must be >= 1");
    std::vector<FeatureVector> deltas;
    if (features.empty())
        return deltas;

    const auto frames = static_cast<int>(features.size());
    const size_t dim = features[0].size();
    double denom = 0.0;
    for (int n = 1; n <= window; ++n)
        denom += 2.0 * n * n;

    deltas.assign(features.size(), FeatureVector(dim, 0.0f));
    for (int t = 0; t < frames; ++t) {
        for (size_t d = 0; d < dim; ++d) {
            double acc = 0.0;
            for (int n = 1; n <= window; ++n) {
                const int lo = std::max(0, t - n);
                const int hi = std::min(frames - 1, t + n);
                acc += n * (features[static_cast<size_t>(hi)][d] -
                            features[static_cast<size_t>(lo)][d]);
            }
            deltas[static_cast<size_t>(t)][d] =
                static_cast<float>(acc / denom);
        }
    }
    return deltas;
}

std::vector<FeatureVector>
appendDeltas(const std::vector<FeatureVector> &features, int window)
{
    const auto d1 = computeDeltas(features, window);
    const auto d2 = computeDeltas(d1, window);
    std::vector<FeatureVector> out;
    out.reserve(features.size());
    for (size_t t = 0; t < features.size(); ++t) {
        FeatureVector frame;
        frame.reserve(features[t].size() * 3);
        frame.insert(frame.end(), features[t].begin(), features[t].end());
        frame.insert(frame.end(), d1[t].begin(), d1[t].end());
        frame.insert(frame.end(), d2[t].begin(), d2[t].end());
        out.push_back(std::move(frame));
    }
    return out;
}

} // namespace sirius::audio
