#include "sim/sim_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/simd.h"
#include "core/shard_health.h"

namespace sirius::sim {

namespace {

/** splitmix64 finalizer: the one-way mix behind every sim draw. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a mixed hash (53-bit mantissa). */
double
unitDouble(uint64_t h)
{
    return static_cast<double>(h >> 11) *
        (1.0 / 9007199254740992.0); // 2^-53
}

/** FNV-1a accumulator for the determinism digest. */
struct Fnv
{
    uint64_t h = 1469598103934665603ULL;

    void
    add(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 1099511628211ULL;
        }
    }

    void
    addDouble(double d)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
        std::memcpy(&bits, &d, sizeof(bits));
        add(bits);
    }

    void
    add(const std::string &s)
    {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ULL;
        }
        add(static_cast<uint64_t>(s.size()));
    }
};

/**
 * The single-run engine. One instance per runSimulation() call; all
 * state lives for exactly one run, so runs can never contaminate each
 * other (a property the determinism oracle re-checks anyway).
 */
class Engine
{
  public:
    Engine(const SimConfig &config, const SimWorkload &workload)
        : cfg_(config), load_(workload), exec_(clock_),
          events_(1024),
          p2cRng_(config.seed ^ 0xC1057E42ULL)
    {
        if (cfg_.shards == 0)
            fatal("SimConfig requires shards >= 1");
        if (cfg_.queueCapacity == 0)
            cfg_.queueCapacity = 1;
        if (cfg_.maxBatchSize == 0)
            cfg_.maxBatchSize = 1;
        if (cfg_.planeEnabled)
            slo_ = std::make_unique<SloTracker>(sloConfig(), &events_);
        shards_.reserve(cfg_.shards);
        for (size_t i = 0; i < cfg_.shards; ++i) {
            auto shard = std::make_unique<Shard>();
            shard->index = i;
            shard->freeWorkers =
                std::max<size_t>(1, cfg_.workersPerShard);
            shard->health = std::make_unique<core::ShardHealthTracker>(
                i, cfg_.health,
                cfg_.planeEnabled ? &events_ : nullptr);
            CacheConfig cache;
            cache.enabled = cfg_.cacheEnabled;
            cache.shards = 1; // single-threaded: striping buys nothing
            cache.byteBudget = cfg_.cacheBudgetBytes;
            cache.ttlSeconds = cfg_.cacheTtlSeconds;
            cache.clock = &clock_;
            shard->cache = std::make_unique<
                ShardedLruCache<uint64_t, uint64_t>>(cache, "sim");
            shards_.push_back(std::move(shard));
        }
    }

    SimResult
    run()
    {
        scheduleWorkload();
        scheduleDrill();
        // 10M events is far above any sane run — a runaway-feedback
        // guard so a buggy config fails loudly instead of spinning.
        exec_.run(10000000);
        if (!exec_.empty())
            fatal("sim: event budget exhausted (feedback loop?)");
        quiescePlane();
        return harvest();
    }

  private:
    /** One dispatched leg of one query. */
    struct Leg
    {
        uint64_t queryId = 0;
        size_t shard = 0;
        int legIndex = 0;
        bool probe = false;
        int arm = 0; ///< 0 primary, 1 failover, 2 hedge, 3 probe
        double dispatchedAt = 0.0;
        double serviceStart = 0.0;
        bool cacheHit = false;
    };

    struct QueryState
    {
        SimQueryOutcome out;
        bool delivered = false;
        int openLegs = 0;
        int failoversLeft = 0;
        bool hedgeFired = false;
        size_t primaryShard = SIZE_MAX;
    };

    struct Shard
    {
        size_t index = 0;
        bool adminDown = false;
        bool faultArmed = false;
        size_t freeWorkers = 1;
        size_t outstanding = 0; ///< dispatched, not yet completed
        size_t queuedLegs = 0;  ///< waiting (open batch + closed units)
        uint64_t batchGen = 0;  ///< invalidates stale flush timers
        std::vector<uint64_t> openBatch; ///< leg ids, in arrival order
        std::deque<std::vector<uint64_t>> ready; ///< closed units
        std::unique_ptr<core::ShardHealthTracker> health;
        std::unique_ptr<ShardedLruCache<uint64_t, uint64_t>> cache;
    };

    SloConfig
    sloConfig() const
    {
        // One availability objective with a single tight burn rule:
        // windows are sized to the sim's virtual scale so a drill
        // outage fires within tens of virtual milliseconds and clears
        // shortly after recovery.
        SloConfig slo;
        SloObjective availability;
        availability.name = "availability";
        availability.signal = SloObjective::Signal::Availability;
        availability.target = 0.999;
        slo.objectives.push_back(availability);
        SloAlertRule rule;
        rule.name = "page";
        rule.longWindowSeconds = 0.08;
        rule.shortWindowSeconds = 0.02;
        rule.burnThreshold = 10.0;
        slo.rules.push_back(rule);
        slo.bucketSeconds = 0.002;
        slo.clock = &clock_;
        return slo;
    }

    // ---- workload -------------------------------------------------

    void
    scheduleWorkload()
    {
        queries_.resize(load_.queries);
        stats_.offered = load_.queries;
        const double qps =
            load_.arrivalRateQps > 0.0 ? load_.arrivalRateQps : 1.0;
        Rng zipf_rng(cfg_.seed ^ 0x51A4F00DULL);
        const size_t texts = std::max<size_t>(1, load_.distinctTexts);
        const ZipfSampler zipf(texts,
                               load_.zipfSkew > 0.0 ? load_.zipfSkew
                                                    : 0.0);
        double t = 0.0;
        for (size_t i = 0; i < load_.queries; ++i) {
            // Exponential gaps from a pure hash of the arrival index,
            // so every differential arm sees identical arrival times.
            double u = unitDouble(
                mix64(cfg_.seed ^ (0xA221ULL + i * 0x9E37ULL)));
            if (u <= 1e-12)
                u = 1e-12;
            t += -std::log(u) / qps;
            const uint64_t text = load_.zipfSkew > 0.0
                ? static_cast<uint64_t>(zipf.draw(zipf_rng))
                : static_cast<uint64_t>(i % texts);
            QueryState &q = queries_[i];
            q.out.id = i;
            q.out.textId = text;
            exec_.at(t, [this, i] { admit(i); });
        }
    }

    void
    scheduleDrill()
    {
        if (cfg_.killAtSeconds <= 0.0 ||
            cfg_.killShard >= cfg_.shards)
            return;
        const size_t target = cfg_.killShard;
        exec_.at(cfg_.killAtSeconds, [this, target] {
            Shard &s = *shards_[target];
            if (cfg_.killByFault) {
                s.faultArmed = true;
                if (cfg_.planeEnabled)
                    events_.note(exec_.now(), "drill",
                                 "shard " + std::to_string(target) +
                                     " faults armed",
                                 {{"shard", std::to_string(target)},
                                  {"enabled", "1"}});
            } else {
                s.adminDown = true;
                if (cfg_.planeEnabled)
                    events_.note(exec_.now(), "shard_kill",
                                 "shard " + std::to_string(target) +
                                     " administratively killed",
                                 {{"shard", std::to_string(target)}});
            }
        });
        if (cfg_.reviveAtSeconds > cfg_.killAtSeconds) {
            exec_.at(cfg_.reviveAtSeconds, [this, target] {
                Shard &s = *shards_[target];
                if (cfg_.killByFault) {
                    s.faultArmed = false;
                    if (cfg_.planeEnabled)
                        events_.note(exec_.now(), "drill",
                                     "shard " + std::to_string(target) +
                                         " faults disarmed",
                                     {{"shard",
                                       std::to_string(target)},
                                      {"enabled", "0"}});
                } else {
                    s.adminDown = false;
                    if (cfg_.planeEnabled)
                        events_.note(exec_.now(), "shard_revive",
                                     "shard " + std::to_string(target) +
                                         " administratively revived",
                                     {{"shard",
                                       std::to_string(target)}});
                }
            });
        }
    }

    // ---- routing --------------------------------------------------

    size_t
    pickShard(uint64_t text_id, size_t avoid)
    {
        // Routable set: healthy first, then non-admin-down — exactly
        // ClusterRouter::pickShard's fallback ladder.
        std::vector<uint8_t> ok(shards_.size(), 0);
        size_t count = 0;
        for (const auto &s : shards_) {
            if (!s->adminDown && !s->health->ejected() &&
                s->index != avoid) {
                ok[s->index] = 1;
                ++count;
            }
        }
        if (count == 0) {
            for (const auto &s : shards_) {
                if (!s->adminDown && s->index != avoid) {
                    ok[s->index] = 1;
                    ++count;
                }
            }
        }
        if (count == 0)
            return SIZE_MAX;

        std::vector<size_t> loads(shards_.size(), 0);
        for (const auto &s : shards_)
            loads[s->index] = s->outstanding + s->queuedLegs;

        uint64_t turn = 0;
        if (cfg_.policy == core::RoutingPolicy::RoundRobin ||
            cfg_.policy == core::RoutingPolicy::LeastOutstanding)
            turn = rrTurn_++;
        const uint64_t affinity_lo = mix64(text_id ^ 0xAF1217ULL);
        return core::chooseByPolicy(cfg_.policy, ok, count, loads,
                                    turn, affinity_lo, p2cRng_);
    }

    void
    admit(uint64_t query_id)
    {
        QueryState &q = queries_[query_id];
        q.out.submittedSeconds = exec_.now();
        // A hedged query never also fails over — the hedge is its
        // retry (same rule as the live router).
        q.failoversLeft =
            cfg_.hedgeSeconds > 0.0 && cfg_.shards > 1
            ? 0
            : cfg_.failoverRetries;

        // Ejected shard due for probing gets this query as its probe.
        bool probing = false;
        for (const auto &s : shards_) {
            if (s->health->claimProbe(exec_.now(), s->adminDown)) {
                q.failoversLeft = std::max(q.failoversLeft, 1);
                if (dispatch(query_id, s->index, true, 3)) {
                    probing = true;
                    q.primaryShard = s->index;
                    ++stats_.probes;
                } else {
                    s->health->recordProbeOutcome(false, exec_.now());
                }
                break;
            }
        }
        if (!probing) {
            size_t target = pickShard(q.out.textId, SIZE_MAX);
            size_t attempts = 0;
            while (target != SIZE_MAX && attempts < cfg_.shards &&
                   !dispatch(query_id, target, false, 0)) {
                target = pickShard(q.out.textId, target);
                ++attempts;
            }
            if (target == SIZE_MAX || attempts >= cfg_.shards) {
                q.out.shed = true;
                ++stats_.shed;
                return;
            }
            q.primaryShard = target;
        }
        ++stats_.admitted;

        if (cfg_.hedgeSeconds > 0.0 && cfg_.shards > 1) {
            exec_.schedule(cfg_.hedgeSeconds, [this, query_id] {
                fireHedge(query_id);
            });
        }
    }

    void
    fireHedge(uint64_t query_id)
    {
        QueryState &q = queries_[query_id];
        if (q.delivered || q.hedgeFired)
            return;
        q.hedgeFired = true;
        const size_t next = pickShard(q.out.textId, q.primaryShard);
        if (next != SIZE_MAX && dispatch(query_id, next, false, 2)) {
            ++stats_.hedgesFired;
            q.out.hedged = true;
        }
    }

    // ---- shard execution ------------------------------------------

    bool
    dispatch(uint64_t query_id, size_t shard, bool probe, int arm)
    {
        Shard &s = *shards_[shard];
        if (s.queuedLegs >= cfg_.queueCapacity)
            return false;
        QueryState &q = queries_[query_id];
        Leg leg;
        leg.queryId = query_id;
        leg.shard = shard;
        leg.legIndex = q.out.legs++;
        leg.probe = probe;
        leg.arm = arm;
        leg.dispatchedAt = exec_.now();
        const uint64_t leg_id = legs_.size();
        legs_.push_back(leg);
        ++q.openLegs;
        ++s.outstanding;
        ++s.queuedLegs;
        ++stats_.legsDispatched;

        if (!cfg_.batchEnabled) {
            s.ready.push_back({leg_id});
            pump(s);
            return true;
        }
        s.openBatch.push_back(leg_id);
        if (s.openBatch.size() >= cfg_.maxBatchSize) {
            closeBatch(s);
            pump(s);
        } else if (s.openBatch.size() == 1) {
            const uint64_t gen = s.batchGen;
            const size_t index = s.index;
            exec_.schedule(cfg_.batchWaitSeconds,
                           [this, index, gen] {
                               Shard &shard_ref = *shards_[index];
                               if (shard_ref.batchGen == gen &&
                                   !shard_ref.openBatch.empty()) {
                                   closeBatch(shard_ref);
                                   pump(shard_ref);
                               }
                           });
        }
        return true;
    }

    void
    closeBatch(Shard &s)
    {
        ++s.batchGen; // stale flush timers become no-ops
        s.ready.push_back(std::move(s.openBatch));
        s.openBatch.clear();
    }

    void
    pump(Shard &s)
    {
        while (s.freeWorkers > 0 && !s.ready.empty()) {
            std::vector<uint64_t> unit = std::move(s.ready.front());
            s.ready.pop_front();
            s.queuedLegs -= unit.size();
            --s.freeWorkers;

            // Per-leg service: a cache hit answers near-free, a miss
            // computes (and caches) the reference answer. The unit
            // occupies a worker for its slowest leg plus the batch
            // setup overhead — the amortization batching exists for.
            double longest = 0.0;
            std::vector<uint64_t> answers(unit.size());
            for (size_t i = 0; i < unit.size(); ++i) {
                Leg &leg = legs_[unit[i]];
                leg.serviceStart = exec_.now();
                uint64_t answer = 0;
                const uint64_t text = queries_[leg.queryId].out.textId;
                if (s.cache->get(text, answer)) {
                    leg.cacheHit = true;
                    longest = std::max(longest,
                                       cfg_.cacheHitServiceSeconds);
                } else {
                    answer = expectedAnswer(text);
                    s.cache->put(text, answer, 64);
                    longest = std::max(
                        longest, serviceSeconds(leg.queryId,
                                                leg.legIndex));
                }
                answers[i] = answer;
            }
            const double duration =
                (cfg_.batchEnabled ? cfg_.batchSetupSeconds : 0.0) +
                longest;

#ifdef SIRIUS_CANARY_BUG
            // Planted defect #1: the batch scatter is off by one —
            // each leg of a multi-item batch receives its neighbour's
            // answer. tests/test_canary.cc proves the fuzzer's
            // "answer == expectedAnswer(textId)" oracle catches this.
            if (answers.size() > 1)
                std::rotate(answers.begin(), answers.begin() + 1,
                            answers.end());
#endif

            const size_t index = s.index;
            exec_.schedule(duration, [this, index, unit, answers] {
                Shard &shard_ref = *shards_[index];
                ++shard_ref.freeWorkers;
                for (size_t i = 0; i < unit.size(); ++i)
                    completeLeg(unit[i], answers[i]);
                pump(shard_ref);
            });
        }
    }

    double
    serviceSeconds(uint64_t query_id, int leg_index) const
    {
        const uint64_t h = mix64(cfg_.seed ^
                                 (query_id * 0x9E3779B1ULL) ^
                                 (static_cast<uint64_t>(leg_index) *
                                  0xC2B2AE35ULL));
        return cfg_.serviceMinSeconds +
            unitDouble(h) *
            (cfg_.serviceMaxSeconds - cfg_.serviceMinSeconds);
    }

    bool
    faultDraw(const Shard &s, uint64_t query_id, int leg_index) const
    {
        const double rate =
            s.faultArmed ? cfg_.faults.drillFailRate
                         : cfg_.faults.failRate;
        if (rate <= 0.0)
            return false;
        const uint64_t h = mix64(
            cfg_.seed ^ 0xFA171ULL ^ (query_id * 0x85EBCA77ULL) ^
            (static_cast<uint64_t>(leg_index) * 0x27D4EB2FULL));
        return unitDouble(h) < rate;
    }

    void
    completeLeg(uint64_t leg_id, uint64_t answer)
    {
        const Leg &leg = legs_[leg_id];
        QueryState &q = queries_[leg.queryId];
        Shard &s = *shards_[leg.shard];
        --s.outstanding;
        --q.openLegs;

        const bool failed = faultDraw(s, leg.queryId, leg.legIndex);
        if (leg.probe)
            s.health->recordProbeOutcome(!failed, exec_.now());
        else
            s.health->recordOutcome(failed, exec_.now());
        // Fleet availability is judged per leg (a failed leg burns
        // error budget even when failover rescues the query) — the
        // same accounting rule as the live router.
        if (slo_)
            slo_->recordOutcome(!failed);

        if (failed) {
            if (!q.delivered && q.failoversLeft > 0) {
                --q.failoversLeft;
                const size_t next =
                    pickShard(q.out.textId, leg.shard);
                if (next != SIZE_MAX &&
                    dispatch(leg.queryId, next, false, 1)) {
                    ++stats_.failovers;
                    q.out.failedOver = true;
                    return; // the failover leg owns delivery now
                }
            }
            // A failure is delivered only by the last leg standing.
            if (!q.delivered && q.openLegs == 0)
                deliver(leg_id, answer, true);
            return;
        }

#ifdef SIRIUS_CANARY_BUG
        // Planted defect #2: a winning hedge leg skips the delivered
        // check, so a query whose primary already answered delivers a
        // second time — the exactly-once invariant the fuzzer guards.
        if (leg.arm == 2) {
            deliver(leg_id, answer, false);
            return;
        }
#endif
        if (!q.delivered)
            deliver(leg_id, answer, false);
    }

    void
    deliver(uint64_t leg_id, uint64_t answer, bool failed)
    {
        const Leg &leg = legs_[leg_id];
        QueryState &q = queries_[leg.queryId];
        ++q.out.deliveries;
        if (q.delivered) {
            ++stats_.doubleDeliveries;
            return; // keep the first delivery's outcome
        }
        q.delivered = true;
        q.out.failed = failed;
        q.out.answer = failed ? 0 : answer;
        q.out.deliveredSeconds = exec_.now();
        q.out.servedBy = leg.shard;
        q.out.cacheHit = leg.cacheHit;
        q.out.dispatchLagSeconds =
            leg.dispatchedAt - q.out.submittedSeconds;
        q.out.queueBatchSeconds =
            leg.serviceStart - leg.dispatchedAt;
        q.out.serviceSeconds = exec_.now() - leg.serviceStart;
        if (failed)
            ++stats_.failed;
        else
            ++stats_.completedOk;
        if (leg.arm == 2)
            ++stats_.hedgeWins;
        if (slo_)
            slo_->recordLatency(q.out.deliveredSeconds -
                                q.out.submittedSeconds);
    }

    // ---- wrap-up --------------------------------------------------

    void
    quiescePlane()
    {
        if (!slo_)
            return;
        // Quiet-period evaluation so burn alerts can clear once the
        // windows drain — the monitor loop's job in production,
        // compressed to 40 virtual ticks here.
        for (int i = 0; i < 40; ++i) {
            clock_.advance(0.01);
            slo_->evaluate();
        }
    }

    SimResult
    harvest()
    {
        SimResult out;
        for (const auto &q : queries_)
            out.queries.push_back(q.out);
        for (const auto &s : shards_) {
            stats_.ejections += s->health->ejections();
            stats_.recoveries += s->health->recoveries();
            stats_.healthyShardsAtEnd +=
                (!s->adminDown && !s->health->ejected()) ? 1 : 0;
            stats_.shardCaches.push_back(s->cache->stats());
        }
        if (slo_) {
            stats_.slo = slo_->snapshot();
            stats_.events = events_.snapshot();
        }
        out.stats = std::move(stats_);

        Fnv fnv;
        for (const auto &q : out.queries) {
            fnv.add(q.id);
            fnv.add(q.textId);
            fnv.add(static_cast<uint64_t>(q.shed) |
                    (static_cast<uint64_t>(q.failed) << 1) |
                    (static_cast<uint64_t>(q.hedged) << 2) |
                    (static_cast<uint64_t>(q.failedOver) << 3) |
                    (static_cast<uint64_t>(q.cacheHit) << 4));
            fnv.add(q.answer);
            fnv.add(static_cast<uint64_t>(q.deliveries));
            fnv.add(static_cast<uint64_t>(q.servedBy));
            fnv.addDouble(q.submittedSeconds);
            fnv.addDouble(q.deliveredSeconds);
        }
        fnv.add(out.stats.admitted);
        fnv.add(out.stats.shed);
        fnv.add(out.stats.completedOk);
        fnv.add(out.stats.failed);
        fnv.add(out.stats.legsDispatched);
        fnv.add(out.stats.hedgesFired);
        fnv.add(out.stats.hedgeWins);
        fnv.add(out.stats.failovers);
        fnv.add(out.stats.probes);
        fnv.add(out.stats.ejections);
        fnv.add(out.stats.recoveries);
        for (const auto &event : out.stats.events) {
            fnv.addDouble(event.timeSeconds);
            fnv.add(event.kind);
            fnv.add(event.message);
            for (const auto &attr : event.attrs) {
                fnv.add(attr.first);
                fnv.add(attr.second);
            }
            out.eventLogText += EventLog::toJson(event);
            out.eventLogText += '\n';
        }
        out.digest = fnv.h;
        return out;
    }

    SimConfig cfg_;
    SimWorkload load_;
    ManualTime clock_;
    VirtualExecutor exec_;
    EventLog events_;
    std::unique_ptr<SloTracker> slo_;
    Rng p2cRng_;
    uint64_t rrTurn_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<QueryState> queries_;
    std::vector<Leg> legs_;
    SimStats stats_;
};

} // namespace

uint64_t
expectedAnswer(uint64_t text_id)
{
    // Route the reference answer through the dispatched SIMD layer so
    // the fuzzer's diff_simd arm observes the kernels end to end: a
    // small deterministic complex vector is derived from the text id,
    // pushed through the power-spectrum kernel, and the result bits
    // are folded into the splitmix answer. Any vector kernel that
    // breaks the bitwise-identity contract (common/simd.h) shifts the
    // folded bits and shows up as an answer/digest mismatch against
    // the scalar-pinned rerun.
    double values[8];
    uint64_t h = text_id ^ 0xA25A25A25A25ULL;
    for (double &v : values) {
        h = mix64(h);
        v = unitDouble(h) - 0.5;
    }
    double norms[4];
    simd::kernels().complexNormF64(values, 4, norms);
    uint64_t folded = 0;
    for (double n : norms) {
        uint64_t bits = 0;
        std::memcpy(&bits, &n, sizeof(bits));
        folded = mix64(folded ^ bits);
    }
    return mix64(text_id ^ 0xA25A25A25A25ULL) ^ folded;
}

SimResult
runSimulation(const SimConfig &config, const SimWorkload &workload)
{
    Engine engine(config, workload);
    return engine.run();
}

ChaosDrillReport
runChaosDrill(uint64_t seed)
{
    SimConfig config;
    config.shards = 4;
    config.policy = core::RoutingPolicy::LeastOutstanding;
    config.workersPerShard = 2;
    config.queueCapacity = 64;
    config.failoverRetries = 1;
    config.batchEnabled = true;
    config.maxBatchSize = 4;
    config.batchWaitSeconds = 0.002;
    config.cacheEnabled = true;
    config.cacheBudgetBytes = 4096;
    config.planeEnabled = true;
    config.faults.failRate = 0.0;
    config.faults.drillFailRate = 1.0;
    config.seed = seed;
    config.killAtSeconds = 0.05;
    config.killShard = 0;
    config.reviveAtSeconds = 0.16;
    config.killByFault = true;

    SimWorkload workload;
    workload.queries = 400;
    workload.arrivalRateQps = 2000.0;
    workload.zipfSkew = 0.9;
    workload.distinctTexts = 24;

    ChaosDrillReport report;
    report.result = runSimulation(config, workload);

    for (const auto &event : report.result.stats.events) {
        if (event.kind == "shard_eject")
            report.ejected = true;
        if (event.kind == "shard_recover")
            report.recovered = true;
        if (event.kind == "alert_fire")
            report.alertFired = true;
    }
    report.alertCleared = !report.result.stats.slo.anyFiring();
    return report;
}

} // namespace sirius::sim
