#include "sim/trial_config.h"

#include <cstdio>
#include <cstdlib>

namespace sirius::sim {

namespace {

std::string
formatDouble(double v)
{
    // %.17g round-trips every IEEE double; trim to the shortest form
    // that still parses back to the same bits so repro lines stay
    // readable (0.002, not 0.0020000000000000001).
    for (int precision = 1; precision <= 17; ++precision) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return "0";
}

void
append(std::string &out, const char *key, const std::string &value)
{
    if (!out.empty())
        out += ',';
    out += key;
    out += '=';
    out += value;
}

bool
parseU64(const std::string &value, uint64_t &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &value, uint32_t &out)
{
    uint64_t v = 0;
    if (!parseU64(value, v) || v > UINT32_MAX)
        return false;
    out = static_cast<uint32_t>(v);
    return true;
}

bool
parseBool(const std::string &value, bool &out)
{
    if (value == "1")
        out = true;
    else if (value == "0")
        out = false;
    else
        return false;
    return true;
}

bool
parseDouble(const std::string &value, double &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

std::string
formatTrialConfig(const TrialConfig &config)
{
    std::string out;
    append(out, "seed", std::to_string(config.seed));
    append(out, "shards", std::to_string(config.shards));
    append(out, "policy", std::to_string(config.policy));
    append(out, "workers", std::to_string(config.workers));
    append(out, "queue", std::to_string(config.queueCapacity));
    append(out, "failover", std::to_string(config.failoverRetries));
    append(out, "hedge", formatDouble(config.hedgeSeconds));
    append(out, "batch", config.batch ? "1" : "0");
    append(out, "batch_size", std::to_string(config.batchSize));
    append(out, "batch_wait", formatDouble(config.batchWaitSeconds));
    append(out, "cache", config.cache ? "1" : "0");
    append(out, "cache_budget",
           std::to_string(config.cacheBudgetBytes));
    append(out, "cache_ttl", formatDouble(config.cacheTtlSeconds));
    append(out, "plane", config.plane ? "1" : "0");
    append(out, "fault_rate", formatDouble(config.faultRate));
    append(out, "drill", config.drill ? "1" : "0");
    append(out, "queries", std::to_string(config.queries));
    append(out, "qps", formatDouble(config.arrivalQps));
    append(out, "zipf", formatDouble(config.zipfSkew));
    append(out, "texts", std::to_string(config.distinctTexts));
    append(out, "simd", config.simd ? "1" : "0");
    return out;
}

bool
parseTrialConfig(const std::string &line, TrialConfig &out)
{
    TrialConfig parsed;
    size_t pos = 0;
    while (pos <= line.size()) {
        size_t comma = line.find(',', pos);
        if (comma == std::string::npos)
            comma = line.size();
        const std::string pair = line.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            return false;
        const size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        bool ok;
        if (key == "seed")
            ok = parseU64(value, parsed.seed);
        else if (key == "shards")
            ok = parseU32(value, parsed.shards);
        else if (key == "policy")
            ok = parseU32(value, parsed.policy);
        else if (key == "workers")
            ok = parseU32(value, parsed.workers);
        else if (key == "queue")
            ok = parseU32(value, parsed.queueCapacity);
        else if (key == "failover")
            ok = parseU32(value, parsed.failoverRetries);
        else if (key == "hedge")
            ok = parseDouble(value, parsed.hedgeSeconds);
        else if (key == "batch")
            ok = parseBool(value, parsed.batch);
        else if (key == "batch_size")
            ok = parseU32(value, parsed.batchSize);
        else if (key == "batch_wait")
            ok = parseDouble(value, parsed.batchWaitSeconds);
        else if (key == "cache")
            ok = parseBool(value, parsed.cache);
        else if (key == "cache_budget")
            ok = parseU32(value, parsed.cacheBudgetBytes);
        else if (key == "cache_ttl")
            ok = parseDouble(value, parsed.cacheTtlSeconds);
        else if (key == "plane")
            ok = parseBool(value, parsed.plane);
        else if (key == "fault_rate")
            ok = parseDouble(value, parsed.faultRate);
        else if (key == "drill")
            ok = parseBool(value, parsed.drill);
        else if (key == "queries")
            ok = parseU32(value, parsed.queries);
        else if (key == "qps")
            ok = parseDouble(value, parsed.arrivalQps);
        else if (key == "zipf")
            ok = parseDouble(value, parsed.zipfSkew);
        else if (key == "texts")
            ok = parseU32(value, parsed.distinctTexts);
        else if (key == "simd")
            ok = parseBool(value, parsed.simd);
        else
            return false;
        if (!ok)
            return false;
        if (comma == line.size())
            break;
    }
    out = parsed;
    return true;
}

} // namespace sirius::sim
