/**
 * @file
 * SimCluster: the whole serving stack — routing, shard health,
 * failover, hedging, micro-batching, per-shard result caches, fault
 * drills, and the SLO/event observability plane — as a deterministic
 * discrete-event model on a VirtualExecutor.
 *
 * What is *real* here and what is modeled:
 *
 *  - Real, bit-for-bit the production code: the routing-policy choice
 *    (core::chooseByPolicy — the exact function ClusterRouter calls),
 *    the shard health state machine (core::ShardHealthTracker — eject,
 *    cooldown probe, recover), the result cache (ShardedLruCache with
 *    its byte budget, TTL and ManualTime seam), the SLO engine
 *    (SloTracker burn-rate alerts on its ManualTime seam), and the
 *    EventLog. These run unmodified on the shared virtual clock.
 *  - Modeled: thread orchestration. Worker pools, batch windows,
 *    hedge timers and failover dispatch become virtual-time events
 *    with hash-derived service times, so a drill that takes wall
 *    seconds in scripts/slo_smoke.sh takes milliseconds here and two
 *    same-seed runs are byte-for-byte identical.
 *
 * Every source of randomness (service time, fault draw) is a pure
 * hash of stable identities — (seed, query id, leg index) — never a
 * position in a shared RNG stream. That is what makes differential
 * arms honest: toggling batching/caching/the plane presents the
 * identical workload, so "answers must match" is a sound oracle. The
 * answer itself is a pure function of the query's text id
 * (expectedAnswer), so a scatter bug anywhere shows up as a direct
 * value mismatch.
 *
 * With SIRIUS_CANARY_BUG defined (the sirius-sim-canary library) two
 * deliberate defects are planted — an off-by-one in the batch
 * result scatter and a double delivery on the hedge path — used by
 * tests/test_canary.cc to prove the fuzzer actually catches and
 * shrinks real bugs. Normal builds compile them out.
 */

#ifndef SIRIUS_SIM_SIM_CLUSTER_H
#define SIRIUS_SIM_SIM_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/cache.h"
#include "common/rng.h"
#include "common/slo.h"
#include "core/cluster.h"
#include "sim/virtual_executor.h"

namespace sirius::sim {

/** Fault model of a simulated fleet. */
struct SimFaults
{
    /** Baseline per-leg failure probability on every shard. */
    double failRate = 0.0;
    /** Per-leg failure probability on a drill-armed shard. */
    double drillFailRate = 1.0;
};

/** Full configuration of one simulated cluster run. */
struct SimConfig
{
    size_t shards = 4;
    core::RoutingPolicy policy = core::RoutingPolicy::LeastOutstanding;
    size_t workersPerShard = 2;
    /** Legs a shard may hold queued (open batch + closed batches)
     *  before admission sheds; >= 1. */
    size_t queueCapacity = 32;
    int failoverRetries = 1;
    double hedgeSeconds = 0.0; ///< 0 disables hedging

    bool batchEnabled = true;
    size_t maxBatchSize = 4;
    double batchWaitSeconds = 0.002; ///< partial-batch flush window

    bool cacheEnabled = true;
    size_t cacheBudgetBytes = 4096; ///< per shard
    double cacheTtlSeconds = 0.0;   ///< 0 = no expiry

    /** SLO tracker + event log + lifecycle events; when false the run
     *  must be observationally identical (the plane-off oracle). */
    bool planeEnabled = true;

    core::ClusterHealthConfig health{
        /*window=*/16, /*minSamples=*/8, /*ejectBadRate=*/0.5,
        /*probeAfterSeconds=*/0.02, /*recoveryProbes=*/2};

    SimFaults faults;
    uint64_t seed = 1;

    // Chaos-drill schedule, virtual seconds; killAtSeconds 0 disables.
    double killAtSeconds = 0.0;
    size_t killShard = 0;
    double reviveAtSeconds = 0.0; ///< 0: stays down
    /** true: arm the shard's faults (visible outage — health ejection
     *  and SLO burn); false: administrative kill (clean drain). */
    bool killByFault = true;

    // Service-time model (virtual seconds).
    double serviceMinSeconds = 0.004;
    double serviceMaxSeconds = 0.010;
    double cacheHitServiceSeconds = 0.0005;
    double batchSetupSeconds = 0.001; ///< per executed batch
};

/** Arrival process of one simulated run. */
struct SimWorkload
{
    size_t queries = 96;
    double arrivalRateQps = 500.0; ///< deterministic exponential gaps
    double zipfSkew = 0.9;         ///< 0 = round-robin text ids
    size_t distinctTexts = 24;
};

/** Final state of one simulated query. */
struct SimQueryOutcome
{
    uint64_t id = 0;
    uint64_t textId = 0;
    bool shed = false;   ///< rejected at admission (never dispatched)
    bool failed = false; ///< delivered as a failure
    uint64_t answer = 0; ///< valid when delivered and !failed
    double submittedSeconds = 0.0;
    double deliveredSeconds = 0.0;
    int deliveries = 0;     ///< completions delivered; must be 1
    size_t servedBy = SIZE_MAX; ///< shard of the winning leg
    int legs = 0;           ///< legs ever dispatched
    bool hedged = false;
    bool failedOver = false;
    bool cacheHit = false;  ///< winning leg hit the result cache

    // Critical-path segments of the winning leg; they must sum to
    // (delivered - submitted) — the span-arithmetic invariant.
    double dispatchLagSeconds = 0.0; ///< submit -> winning leg dispatch
    double queueBatchSeconds = 0.0;  ///< dispatch -> service start
    double serviceSeconds = 0.0;     ///< service start -> delivery
};

/** Fleet-level counters of one simulated run. */
struct SimStats
{
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t completedOk = 0;
    uint64_t failed = 0;
    uint64_t legsDispatched = 0;
    uint64_t hedgesFired = 0;
    uint64_t hedgeWins = 0;
    uint64_t failovers = 0;
    uint64_t probes = 0;
    uint64_t ejections = 0;
    uint64_t recoveries = 0;
    uint64_t doubleDeliveries = 0; ///< exactly-once violations
    size_t healthyShardsAtEnd = 0;
    std::vector<CacheStats> shardCaches; ///< one per shard
    SloSnapshot slo;                     ///< empty when plane off
    std::vector<EventLog::Event> events; ///< empty when plane off
};

/** Everything a run produces, digestible for determinism checks. */
struct SimResult
{
    SimStats stats;
    std::vector<SimQueryOutcome> queries; ///< indexed by query id
    /** FNV-1a over every outcome field, counter, and event — two
     *  same-seed runs must produce the identical digest. */
    uint64_t digest = 0;
    /** The retained event log as JSONL (one line per event) — the
     *  byte-for-byte comparable artifact of a chaos drill. */
    std::string eventLogText;
};

/** The reference answer for @p text_id — a pure function, so every
 *  layer (cache, batch scatter, failover replica) must reproduce it. */
uint64_t expectedAnswer(uint64_t text_id);

/** Run one simulated cluster workload to completion (drains every
 *  leg, then lets the SLO plane quiesce so alerts can clear). */
SimResult runSimulation(const SimConfig &config,
                        const SimWorkload &workload);

/** Outcome of the canonical 4-shard kill/revive chaos drill. */
struct ChaosDrillReport
{
    SimResult result;
    bool ejected = false;      ///< health ejected the killed shard
    bool alertFired = false;   ///< an SLO burn alert fired
    bool recovered = false;    ///< probes brought the shard back
    bool alertCleared = false; ///< no alert firing at end of run
};

/**
 * The sim-harness port of scripts/slo_smoke.sh's drill: a 4-shard
 * fleet under steady load, shard 0's fault injection armed mid-run
 * and disarmed later; asserts the full kill -> eject -> alert fire ->
 * revive -> recover -> alert clear arc from the event log. Entirely
 * virtual time — zero wall-clock sleeps.
 */
ChaosDrillReport runChaosDrill(uint64_t seed);

} // namespace sirius::sim

#endif // SIRIUS_SIM_SIM_CLUSTER_H
