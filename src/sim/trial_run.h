/**
 * @file
 * runTrial: execute one TrialConfig against the simulation and judge
 * it with every differential oracle and global invariant.
 *
 * Declared separately from sim_cluster.h because this is the symbol
 * the PropertyFuzzer's TrialFn callback binds to — implemented twice,
 * once in sirius-sim and once (with the planted canary bugs compiled
 * in) in sirius-sim-canary. A binary links exactly one of the two.
 */

#ifndef SIRIUS_SIM_TRIAL_RUN_H
#define SIRIUS_SIM_TRIAL_RUN_H

#include "sim/trial_config.h"

namespace sirius::sim {

/**
 * Run @p config through the simulation and check:
 *
 *  - determinism: two same-seed runs produce the same digest;
 *  - accounting: offered == admitted + shed and
 *    admitted == completedOk + failed;
 *  - exactly-once: every admitted query delivers exactly once (shed
 *    queries deliver zero times), and no double deliveries counted;
 *  - answers: every OK delivery returns expectedAnswer(textId), so a
 *    scatter/cache/replica bug anywhere is a direct value mismatch;
 *  - critical path: the winning leg's dispatch-lag + queue/batch +
 *    service segments sum to (delivered - submitted);
 *  - cache budget: no shard cache ever holds more bytes than its
 *    configured budget;
 *  - alert hygiene: if a burn alert ever fired, it has cleared by the
 *    end of the post-run quiet period;
 *  - differential arms (each compares OK-delivered answers; the plane
 *    arm compares every outcome field): batching off ≡ on, cache off ≡
 *    on, single-shard ≡ sharded-with-failover, plane off ≡ on.
 */
TrialReport runTrial(const TrialConfig &config);

} // namespace sirius::sim

#endif // SIRIUS_SIM_TRIAL_RUN_H
