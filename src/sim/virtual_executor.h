/**
 * @file
 * VirtualExecutor: a deterministic discrete-event loop over a
 * common::ManualTime — the beating heart of the simulation harness.
 *
 * The live stack schedules with threads and wall-clock waits
 * (ThreadPool workers, the batch scheduler's timeout thread, the
 * cluster's hedge timer). Those are the right mechanisms in
 * production and precisely the wrong ones in a whole-system test: a
 * 4-shard kill/revive chaos drill spends seconds of real time mostly
 * *waiting*, and thread interleavings make no two runs identical. The
 * executor replaces waiting with bookkeeping: every future action is
 * an (due-time, sequence) ordered event, run() pops the earliest
 * event, advances the shared ManualTime to its due time, and invokes
 * it. Virtual hours run in milliseconds, nothing ever sleeps, and the
 * (due, seq) total order makes every run byte-for-byte reproducible
 * from its inputs — the property the PropertyFuzzer's shrinking and
 * one-line repros depend on.
 *
 * Components with existing ManualTime seams (caches' TTLs, SLO
 * windows, Deadline::afterManual, the new clock hooks on
 * ConcurrentServer/BatchScheduler/ClusterRouter) read the same clock
 * the executor advances, so real production code runs unmodified on
 * virtual time.
 */

#ifndef SIRIUS_SIM_VIRTUAL_EXECUTOR_H
#define SIRIUS_SIM_VIRTUAL_EXECUTOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/deadline.h"

namespace sirius::sim {

/**
 * Seeded single-threaded event loop on virtual time.
 *
 * Events scheduled for the same due time run in schedule order (the
 * monotone sequence number breaks ties), so determinism never depends
 * on map iteration luck. Tasks may schedule further events, including
 * at the current time. Not thread-safe by design: determinism is the
 * whole point, and the simulation is single-threaded.
 */
class VirtualExecutor
{
  public:
    using Task = std::function<void()>;

    /** @param clock shared virtual clock; must outlive the executor.
     *  The executor only ever advances it, never rewinds. */
    explicit VirtualExecutor(ManualTime &clock) : clock_(clock) {}

    VirtualExecutor(const VirtualExecutor &) = delete;
    VirtualExecutor &operator=(const VirtualExecutor &) = delete;

    /** Current virtual time (the shared clock's now()). */
    double now() const { return clock_.now(); }

    /**
     * Schedule @p task to run @p delay_seconds from now (clamped to
     * >= 0 — the past is not available). @return a handle for cancel().
     */
    uint64_t schedule(double delay_seconds, Task task);

    /** Schedule @p task at absolute virtual time @p due_seconds
     *  (clamped to now). @return a handle for cancel(). */
    uint64_t at(double due_seconds, Task task);

    /** Cancel a pending event. @return false when it already ran (or
     *  was cancelled before). */
    bool cancel(uint64_t id);

    /**
     * Run events in (due, seq) order until none remain (or @p
     * max_events have run — a runaway-feedback guard, not a scheduling
     * knob). The clock advances to each event's due time just before
     * it runs. @return events executed.
     */
    size_t run(size_t max_events = SIZE_MAX);

    /**
     * Run every event due at or before @p until_seconds, then advance
     * the clock to exactly @p until_seconds (events scheduled later
     * stay pending). @return events executed.
     */
    size_t runUntil(double until_seconds);

    size_t pending() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    /** Events executed over the executor's lifetime. */
    uint64_t executed() const { return executed_; }

  private:
    using Key = std::pair<double, uint64_t>; ///< (due, seq)

    void advanceTo(double due);

    ManualTime &clock_;
    uint64_t nextSeq_ = 1; ///< doubles as the cancel handle
    uint64_t executed_ = 0;
    std::map<Key, Task> queue_;
    std::map<uint64_t, double> dueBySeq_; ///< cancel() index
};

} // namespace sirius::sim

#endif // SIRIUS_SIM_VIRTUAL_EXECUTOR_H
