#include "sim/trial_run.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/simd.h"
#include "sim/sim_cluster.h"

namespace sirius::sim {

namespace {

SimConfig
toSimConfig(const TrialConfig &t)
{
    SimConfig cfg;
    cfg.shards = std::max<uint32_t>(1, t.shards);
    cfg.policy = static_cast<core::RoutingPolicy>(
        t.policy % core::kRoutingPolicies);
    cfg.workersPerShard = std::max<uint32_t>(1, t.workers);
    cfg.queueCapacity = std::max<uint32_t>(1, t.queueCapacity);
    cfg.failoverRetries = t.failoverRetries;
    cfg.hedgeSeconds = std::max(0.0, t.hedgeSeconds);
    cfg.batchEnabled = t.batch;
    cfg.maxBatchSize = std::max<uint32_t>(1, t.batchSize);
    cfg.batchWaitSeconds = std::max(0.0001, t.batchWaitSeconds);
    cfg.cacheEnabled = t.cache;
    cfg.cacheBudgetBytes = t.cacheBudgetBytes;
    cfg.cacheTtlSeconds = std::max(0.0, t.cacheTtlSeconds);
    cfg.planeEnabled = t.plane;
    cfg.faults.failRate =
        std::clamp(t.faultRate, 0.0, 1.0);
    cfg.seed = t.seed;
    if (t.drill) {
        // Kill shard 0 a quarter of the way into the arrival window,
        // revive past the halfway mark — scaled to the workload so a
        // shrunk two-query repro still exercises the schedule.
        const double qps = t.arrivalQps > 0.0 ? t.arrivalQps : 1.0;
        const double duration =
            static_cast<double>(std::max<uint32_t>(1, t.queries)) /
            qps;
        cfg.killAtSeconds = std::max(0.005, 0.25 * duration);
        cfg.reviveAtSeconds =
            cfg.killAtSeconds + std::max(0.05, 0.3 * duration);
        cfg.killShard = 0;
        cfg.killByFault = true;
    }
    return cfg;
}

SimWorkload
toWorkload(const TrialConfig &t)
{
    SimWorkload load;
    load.queries = std::max<uint32_t>(1, t.queries);
    load.arrivalRateQps = t.arrivalQps > 0.0 ? t.arrivalQps : 1.0;
    load.zipfSkew = std::max(0.0, t.zipfSkew);
    load.distinctTexts = std::max<uint32_t>(1, t.distinctTexts);
    return load;
}

void
addViolation(TrialReport &report, const std::string &oracle,
             const std::string &detail)
{
    report.violations.push_back({oracle, detail});
}

void
checkInvariants(TrialReport &report, const SimResult &result,
                const SimConfig &cfg)
{
    const SimStats &s = result.stats;
    if (s.offered != s.admitted + s.shed)
        addViolation(report, "accounting",
                     "offered " + std::to_string(s.offered) +
                         " != admitted " + std::to_string(s.admitted) +
                         " + shed " + std::to_string(s.shed));
    if (s.admitted != s.completedOk + s.failed)
        addViolation(report, "accounting",
                     "admitted " + std::to_string(s.admitted) +
                         " != ok " + std::to_string(s.completedOk) +
                         " + failed " + std::to_string(s.failed));

    uint64_t delivery_bugs = 0, answer_bugs = 0, path_bugs = 0;
    std::string delivery_first, answer_first, path_first;
    for (const auto &q : result.queries) {
        const int expect = q.shed ? 0 : 1;
        if (q.deliveries != expect && delivery_bugs++ == 0)
            delivery_first = "query " + std::to_string(q.id) + " " +
                std::to_string(q.deliveries) + " deliveries (want " +
                std::to_string(expect) + ")";
        if (!q.shed && !q.failed &&
            q.answer != expectedAnswer(q.textId) && answer_bugs++ == 0)
            answer_first = "query " + std::to_string(q.id) +
                " answer " + std::to_string(q.answer) + " != " +
                std::to_string(expectedAnswer(q.textId)) +
                " for text " + std::to_string(q.textId);
        if (!q.shed) {
            const double span =
                q.deliveredSeconds - q.submittedSeconds;
            const double parts = q.dispatchLagSeconds +
                q.queueBatchSeconds + q.serviceSeconds;
            if (std::fabs(span - parts) > 1e-9 && path_bugs++ == 0)
                path_first = "query " + std::to_string(q.id) +
                    " segments " + std::to_string(parts) +
                    " != span " + std::to_string(span);
        }
    }
    if (delivery_bugs > 0 || s.doubleDeliveries > 0)
        addViolation(report, "exactly_once",
                     std::to_string(delivery_bugs) +
                         " queries off (first: " + delivery_first +
                         "), doubleDeliveries=" +
                         std::to_string(s.doubleDeliveries));
    if (answer_bugs > 0)
        addViolation(report, "answer",
                     std::to_string(answer_bugs) +
                         " wrong answers (first: " + answer_first +
                         ")");
    if (path_bugs > 0)
        addViolation(report, "critical_path",
                     std::to_string(path_bugs) +
                         " span mismatches (first: " + path_first +
                         ")");

    for (size_t i = 0; i < s.shardCaches.size(); ++i) {
        if (s.shardCaches[i].bytes > cfg.cacheBudgetBytes) {
            addViolation(
                report, "cache_budget",
                "shard " + std::to_string(i) + " holds " +
                    std::to_string(s.shardCaches[i].bytes) +
                    " bytes > budget " +
                    std::to_string(cfg.cacheBudgetBytes));
            break;
        }
    }

    if (cfg.planeEnabled) {
        bool fired = false;
        for (const auto &event : s.events)
            fired = fired || event.kind == "alert_fire";
        if (fired && s.slo.anyFiring())
            addViolation(report, "alert_clear",
                         "burn alert still firing after the "
                         "post-run quiet period");
    }
}

/** Compare OK answers between the base run and a differential arm:
 *  any query delivered OK in both must carry the same answer. */
void
diffAnswers(TrialReport &report, const SimResult &base,
            const SimResult &arm, const std::string &oracle)
{
    uint64_t bugs = 0;
    std::string first;
    const size_t n = std::min(base.queries.size(), arm.queries.size());
    if (base.queries.size() != arm.queries.size())
        addViolation(report, oracle,
                     "arm saw " + std::to_string(arm.queries.size()) +
                         " queries, base " +
                         std::to_string(base.queries.size()));
    for (size_t i = 0; i < n; ++i) {
        const auto &b = base.queries[i];
        const auto &a = arm.queries[i];
        const bool b_ok = !b.shed && !b.failed;
        const bool a_ok = !a.shed && !a.failed;
        if (b_ok && a_ok && b.answer != a.answer && bugs++ == 0)
            first = "query " + std::to_string(i) + " base answer " +
                std::to_string(b.answer) + " != arm " +
                std::to_string(a.answer);
    }
    if (bugs > 0)
        addViolation(report, oracle,
                     std::to_string(bugs) +
                         " answer mismatches (first: " + first + ")");
}

/** The plane must be write-only: toggling it may not change a single
 *  outcome field or counter. */
void
diffPlane(TrialReport &report, const SimResult &base,
          const SimResult &arm)
{
    const SimStats &b = base.stats;
    const SimStats &a = arm.stats;
    if (b.admitted != a.admitted || b.shed != a.shed ||
        b.completedOk != a.completedOk || b.failed != a.failed ||
        b.legsDispatched != a.legsDispatched ||
        b.hedgesFired != a.hedgesFired ||
        b.hedgeWins != a.hedgeWins || b.failovers != a.failovers ||
        b.probes != a.probes || b.ejections != a.ejections ||
        b.recoveries != a.recoveries) {
        addViolation(report, "diff_plane",
                     "fleet counters changed when the plane was "
                     "disabled");
        return;
    }
    for (size_t i = 0; i < base.queries.size(); ++i) {
        const auto &x = base.queries[i];
        const auto &y = arm.queries[i];
        if (x.shed != y.shed || x.failed != y.failed ||
            x.answer != y.answer || x.deliveries != y.deliveries ||
            x.servedBy != y.servedBy || x.hedged != y.hedged ||
            x.failedOver != y.failedOver ||
            x.cacheHit != y.cacheHit ||
            x.submittedSeconds != y.submittedSeconds ||
            x.deliveredSeconds != y.deliveredSeconds) {
            addViolation(report, "diff_plane",
                         "query " + std::to_string(i) +
                             " outcome changed when the plane was "
                             "disabled");
            return;
        }
    }
}

} // namespace

TrialReport
runTrial(const TrialConfig &config)
{
    TrialReport report;
    const SimConfig base_cfg = toSimConfig(config);
    const SimWorkload load = toWorkload(config);

    // Kernel-dispatch axis: simd=0 pins the scalar reference tables
    // for the whole trial; simd=1 keeps the host's dispatched ISA and
    // arms the diff_simd scalar rerun below. The entry ISA is restored
    // before returning either way.
    const simd::Isa entry_isa = simd::activeIsa();
    if (!config.simd)
        simd::setIsa(simd::Isa::Scalar);

    const SimResult base = runSimulation(base_cfg, load);
    report.digest = base.digest;
    report.queries = base.stats.offered;

    const SimResult again = runSimulation(base_cfg, load);
    if (base.digest != again.digest)
        addViolation(report, "determinism",
                     "same-seed digests differ: " +
                         std::to_string(base.digest) + " vs " +
                         std::to_string(again.digest));

    checkInvariants(report, base, base_cfg);

    if (base_cfg.batchEnabled) {
        SimConfig arm = base_cfg;
        arm.batchEnabled = false;
        diffAnswers(report, base, runSimulation(arm, load),
                    "diff_batch");
    }
    if (base_cfg.cacheEnabled) {
        SimConfig arm = base_cfg;
        arm.cacheEnabled = false;
        diffAnswers(report, base, runSimulation(arm, load),
                    "diff_cache");
    }
    if (base_cfg.shards > 1) {
        SimConfig arm = base_cfg;
        arm.shards = 1;
        arm.hedgeSeconds = 0.0; // single shard cannot hedge
        diffAnswers(report, base, runSimulation(arm, load),
                    "diff_single_shard");
    }
    if (base_cfg.planeEnabled) {
        SimConfig arm = base_cfg;
        arm.planeEnabled = false;
        diffPlane(report, base, runSimulation(arm, load));
    }
    if (config.simd && simd::activeIsa() != simd::Isa::Scalar) {
        // The expectedAnswer() path runs through simd::kernels(), so
        // rerunning the base config with the scalar tables pinned
        // checks the bitwise-identity contract end to end: any vector
        // kernel that drifts from its scalar reference changes answers
        // and therefore the digest.
        simd::setIsa(simd::Isa::Scalar);
        const SimResult arm = runSimulation(base_cfg, load);
        diffAnswers(report, base, arm, "diff_simd");
        if (arm.digest != base.digest)
            addViolation(report, "diff_simd",
                         "scalar-pinned digest " +
                             std::to_string(arm.digest) +
                             " != dispatched digest " +
                             std::to_string(base.digest));
    }
    simd::setIsa(entry_isa);

    report.ok = report.violations.empty();
    return report;
}

} // namespace sirius::sim
