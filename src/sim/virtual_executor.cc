#include "sim/virtual_executor.h"

#include <utility>

namespace sirius::sim {

uint64_t
VirtualExecutor::schedule(double delay_seconds, Task task)
{
    return at(now() + (delay_seconds > 0.0 ? delay_seconds : 0.0),
              std::move(task));
}

uint64_t
VirtualExecutor::at(double due_seconds, Task task)
{
    const double due = due_seconds > now() ? due_seconds : now();
    const uint64_t seq = nextSeq_++;
    queue_.emplace(Key{due, seq}, std::move(task));
    dueBySeq_.emplace(seq, due);
    return seq;
}

bool
VirtualExecutor::cancel(uint64_t id)
{
    auto it = dueBySeq_.find(id);
    if (it == dueBySeq_.end())
        return false;
    queue_.erase(Key{it->second, id});
    dueBySeq_.erase(it);
    return true;
}

void
VirtualExecutor::advanceTo(double due)
{
    const double delta = due - clock_.now();
    if (delta > 0.0)
        clock_.advance(delta);
}

size_t
VirtualExecutor::run(size_t max_events)
{
    size_t ran = 0;
    while (!queue_.empty() && ran < max_events) {
        auto it = queue_.begin();
        const Key key = it->first;
        Task task = std::move(it->second);
        queue_.erase(it);
        dueBySeq_.erase(key.second);
        advanceTo(key.first);
        ++ran;
        ++executed_;
        task();
    }
    return ran;
}

size_t
VirtualExecutor::runUntil(double until_seconds)
{
    size_t ran = 0;
    while (!queue_.empty() &&
           queue_.begin()->first.first <= until_seconds) {
        auto it = queue_.begin();
        const Key key = it->first;
        Task task = std::move(it->second);
        queue_.erase(it);
        dueBySeq_.erase(key.second);
        advanceTo(key.first);
        ++ran;
        ++executed_;
        task();
    }
    advanceTo(until_seconds);
    return ran;
}

} // namespace sirius::sim
