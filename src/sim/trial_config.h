/**
 * @file
 * TrialConfig: the flat, serializable knob set one fuzz trial explores,
 * plus the TrialReport a trial hands back.
 *
 * This vocabulary lives in its own tiny library (sirius-trial) on
 * purpose: the PropertyFuzzer (sirius-testing) speaks only TrialConfig
 * and TrialReport through a callback, so it can drive either the
 * normal simulation (sirius-sim) or the canary-bug build
 * (sirius-sim-canary) without ever linking both into one binary —
 * the two define the same symbols and would be an ODR violation.
 *
 * formatTrialConfig()/parseTrialConfig() round-trip a config through a
 * single "k=v,k=v" line. That line IS the repro artifact: a shrunk
 * failure prints one line, the line goes into tests/corpus/, and
 * fuzz_driver --replay re-runs it forever after.
 */

#ifndef SIRIUS_SIM_TRIAL_CONFIG_H
#define SIRIUS_SIM_TRIAL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::sim {

/** One fuzz trial's full knob set — workload AND cluster config. */
struct TrialConfig
{
    uint64_t seed = 1;

    // Cluster shape.
    uint32_t shards = 4;
    uint32_t policy = 1; ///< core::RoutingPolicy index
    uint32_t workers = 2;
    uint32_t queueCapacity = 32;
    uint32_t failoverRetries = 1;
    double hedgeSeconds = 0.0;

    // Batching.
    bool batch = true;
    uint32_t batchSize = 4;
    double batchWaitSeconds = 0.002;

    // Caching.
    bool cache = true;
    uint32_t cacheBudgetBytes = 4096;
    double cacheTtlSeconds = 0.0;

    // Observability plane.
    bool plane = true;

    // Kernel dispatch: true runs the host's dispatched SIMD tables
    // (and arms the diff_simd scalar rerun), false pins the scalar
    // reference kernels for the whole trial.
    bool simd = true;

    // Faults + drill.
    double faultRate = 0.0;
    bool drill = false; ///< kill/revive schedule on shard 0

    // Workload.
    uint32_t queries = 96;
    double arrivalQps = 500.0;
    double zipfSkew = 0.9;
    uint32_t distinctTexts = 24;
};

/** One oracle violation: which check failed and the evidence. */
struct TrialViolation
{
    std::string oracle; ///< stable id ("exactly_once", "diff_batch"...)
    std::string detail; ///< human-readable evidence
};

/** What one trial found. */
struct TrialReport
{
    bool ok = true;
    std::vector<TrialViolation> violations;
    uint64_t digest = 0;   ///< base-run determinism digest
    uint64_t queries = 0;  ///< base-run offered queries (shrink metric)
};

/** Serialize to the one-line "k=v,k=v" repro form (stable key order,
 *  shortest round-trip float formatting). */
std::string formatTrialConfig(const TrialConfig &config);

/** Parse a formatTrialConfig() line (unknown keys rejected).
 *  @return false when malformed; @p out untouched on failure. */
bool parseTrialConfig(const std::string &line, TrialConfig &out);

} // namespace sirius::sim

#endif // SIRIUS_SIM_TRIAL_CONFIG_H
