#include "testing/property_fuzzer.h"

#include <chrono>
#include <utility>

#include "common/rng.h"

namespace sirius::testing {

namespace {

/** First violation's oracle id — the bug identity shrinking preserves. */
std::string
firstOracle(const sim::TrialReport &report)
{
    return report.violations.empty() ? std::string()
                                     : report.violations[0].oracle;
}

bool
violatesOracle(const sim::TrialReport &report,
               const std::string &oracle)
{
    for (const auto &v : report.violations)
        if (v.oracle == oracle)
            return true;
    return false;
}

} // namespace

PropertyFuzzer::PropertyFuzzer(TrialFn trial, FuzzOptions options)
    : trial_(std::move(trial)), opts_(options)
{
}

sim::TrialConfig
PropertyFuzzer::generate(uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x5151ULL);
    sim::TrialConfig t;
    t.seed = seed;
    t.shards = 1 + static_cast<uint32_t>(rng.below(6));
    t.policy = static_cast<uint32_t>(rng.below(4));
    t.workers = 1 + static_cast<uint32_t>(rng.below(3));
    t.queueCapacity = 4 + static_cast<uint32_t>(rng.below(61));
    t.failoverRetries = static_cast<uint32_t>(rng.below(3));
    t.hedgeSeconds =
        t.shards > 1 && rng.chance(0.3) ? rng.uniform(0.002, 0.02)
                                        : 0.0;
    t.batch = rng.chance(0.8);
    t.batchSize = 1 + static_cast<uint32_t>(rng.below(8));
    t.batchWaitSeconds = rng.uniform(0.0005, 0.004);
    t.cache = rng.chance(0.8);
    t.cacheBudgetBytes = 64u
        << static_cast<uint32_t>(rng.below(6)); // 64B .. 2KiB
    t.cacheTtlSeconds =
        rng.chance(0.3) ? rng.uniform(0.005, 0.1) : 0.0;
    t.plane = rng.chance(0.7);
    t.faultRate = rng.chance(0.4) ? rng.uniform(0.0, 0.2) : 0.0;
    t.drill = t.shards > 1 && rng.chance(0.3);
    t.queries = 8 + static_cast<uint32_t>(rng.below(120));
    t.arrivalQps = rng.uniform(100.0, 2000.0);
    t.zipfSkew = rng.chance(0.7) ? rng.uniform(0.3, 1.2) : 0.0;
    t.distinctTexts = 4 + static_cast<uint32_t>(rng.below(28));
    // Mostly exercise the dispatched SIMD tables (which also arms the
    // diff_simd scalar rerun); occasionally pin scalar outright.
    t.simd = rng.chance(0.8);
    return t;
}

FuzzResult
PropertyFuzzer::run()
{
    FuzzResult out;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < opts_.runs; ++i) {
        if (opts_.maxSeconds > 0.0) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (elapsed >= opts_.maxSeconds)
                break;
        }
        const sim::TrialConfig config = generate(opts_.seed + i);
        const sim::TrialReport report = trial_(config);
        ++out.runs;
        if (!report.ok) {
            out.foundFailure = true;
            if (opts_.shrink) {
                out.failure = shrink(config, report, i);
            } else {
                out.failure.config = config;
                out.failure.violations = report.violations;
                out.failure.repro = sim::formatTrialConfig(config);
                out.failure.runIndex = i;
            }
            break;
        }
    }
    return out;
}

FuzzFailure
PropertyFuzzer::shrink(const sim::TrialConfig &config,
                       const sim::TrialReport &report,
                       size_t run_index)
{
    FuzzFailure failure;
    failure.config = config;
    failure.violations = report.violations;
    failure.runIndex = run_index;
    const std::string oracle = firstOracle(report);

    // Candidate simplifications, cheapest-win first. Each mutates a
    // copy; a candidate is kept only when the same oracle still
    // fails, then the pass restarts so reductions compound.
    using Mutate = bool (*)(sim::TrialConfig &);
    static constexpr Mutate kMutations[] = {
        [](sim::TrialConfig &t) {
            if (t.queries <= 1)
                return false;
            t.queries /= 2;
            return true;
        },
        [](sim::TrialConfig &t) {
            return std::exchange(t.drill, false);
        },
        [](sim::TrialConfig &t) {
            if (t.hedgeSeconds == 0.0)
                return false;
            t.hedgeSeconds = 0.0;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.faultRate == 0.0)
                return false;
            t.faultRate = 0.0;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.failoverRetries == 0)
                return false;
            t.failoverRetries = 0;
            return true;
        },
        [](sim::TrialConfig &t) {
            return std::exchange(t.cache, false);
        },
        [](sim::TrialConfig &t) {
            return std::exchange(t.batch, false);
        },
        [](sim::TrialConfig &t) {
            return std::exchange(t.plane, false);
        },
        // Pinning scalar kernels drops the diff_simd arm and takes the
        // vector tables out of the repro entirely — if the failure
        // survives, SIMD dispatch is exonerated.
        [](sim::TrialConfig &t) {
            return std::exchange(t.simd, false);
        },
        [](sim::TrialConfig &t) {
            if (t.shards <= 1)
                return false;
            t.shards = t.shards / 2;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.batchSize <= 1)
                return false;
            t.batchSize /= 2;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.workers <= 1)
                return false;
            t.workers = 1;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.distinctTexts <= 1)
                return false;
            t.distinctTexts /= 2;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.cacheTtlSeconds == 0.0)
                return false;
            t.cacheTtlSeconds = 0.0;
            return true;
        },
        [](sim::TrialConfig &t) {
            if (t.zipfSkew == 0.0)
                return false;
            t.zipfSkew = 0.0;
            return true;
        },
    };

    size_t trials = 0;
    bool improved = true;
    while (improved && trials < opts_.maxShrinkSteps) {
        improved = false;
        for (const auto &mutate : kMutations) {
            if (trials >= opts_.maxShrinkSteps)
                break;
            sim::TrialConfig candidate = failure.config;
            if (!mutate(candidate))
                continue;
            ++trials;
            const sim::TrialReport check = trial_(candidate);
            if (!check.ok && violatesOracle(check, oracle)) {
                failure.config = candidate;
                failure.violations = check.violations;
                ++failure.shrinkSteps;
                improved = true;
                break; // restart the pass from the cheapest mutation
            }
        }
    }
    failure.repro = sim::formatTrialConfig(failure.config);
    return failure;
}

} // namespace sirius::testing
