/**
 * @file
 * PropertyFuzzer: randomized workload+config generation, oracle-driven
 * failure detection, and greedy shrinking to a one-line repro.
 *
 * The fuzzer owns the *search*: it derives a TrialConfig from each
 * run's seed (every knob of the serving stack — shard count, routing
 * policy, batch shape, cache budgets and TTLs, hedging, fault rates,
 * kill/revive drills — plus the workload), hands it to a TrialFn, and
 * inspects the TrialReport. What a trial *means* (the differential
 * oracles and invariants) lives behind the callback, so this library
 * links only sirius-trial + sirius-common and the same fuzzer drives
 * both the normal simulation and the canary-bug build without ODR
 * trouble.
 *
 * On failure the fuzzer shrinks: it repeatedly tries a simpler config
 * (fewer queries, knobs off, fewer shards) and keeps each candidate
 * only if the *same oracle* still fails — so the repro that comes out
 * is the smallest config this greedy pass can find that still shows
 * the original bug, printable as one formatTrialConfig() line.
 */

#ifndef SIRIUS_TESTING_PROPERTY_FUZZER_H
#define SIRIUS_TESTING_PROPERTY_FUZZER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/trial_config.h"

namespace sirius::testing {

/** The system under test: one trial in, one judged report out. */
using TrialFn =
    std::function<sim::TrialReport(const sim::TrialConfig &)>;

/** Fuzzing campaign knobs. */
struct FuzzOptions
{
    uint64_t seed = 1;  ///< campaign seed; run i uses seed + i
    size_t runs = 200;  ///< trial budget
    /** Wall-clock budget in seconds; 0 = unlimited (runs only).
     *  Checked between trials, so the campaign overshoots by at most
     *  one trial. */
    double maxSeconds = 0.0;
    bool shrink = true;
    size_t maxShrinkSteps = 64; ///< trial budget of the shrink pass
};

/** A failing trial, after shrinking. */
struct FuzzFailure
{
    sim::TrialConfig config; ///< smallest config still failing
    std::vector<sim::TrialViolation> violations; ///< on that config
    std::string repro;   ///< one line: formatTrialConfig(config)
    size_t runIndex = 0; ///< which campaign run found it
    size_t shrinkSteps = 0; ///< accepted simplifications
};

/** Campaign outcome. */
struct FuzzResult
{
    size_t runs = 0; ///< trials executed (excluding shrink trials)
    bool foundFailure = false;
    FuzzFailure failure; ///< valid when foundFailure
};

class PropertyFuzzer
{
  public:
    PropertyFuzzer(TrialFn trial, FuzzOptions options);

    /** The config derived from @p seed — pure, so a campaign can be
     *  replayed run-by-run. Exposed for tests. */
    static sim::TrialConfig generate(uint64_t seed);

    /** Run the campaign: stop at the first failure (shrunk when
     *  options.shrink) or when the run/time budget is spent. */
    FuzzResult run();

    /** Shrink @p config, keeping only candidates that still violate
     *  the same oracle as @p report's first violation. */
    FuzzFailure shrink(const sim::TrialConfig &config,
                       const sim::TrialReport &report,
                       size_t run_index);

  private:
    TrialFn trial_;
    FuzzOptions opts_;
};

} // namespace sirius::testing

#endif // SIRIUS_TESTING_PROPERTY_FUZZER_H
