#include "accel/uarch.h"

#include "common/logging.h"

namespace sirius::accel {

const MicroarchProfile &
microarchProfile(Kernel kernel)
{
    // Modeled after Figure 10: DNN and Regex execute efficiently on the
    // Xeon; GMM and FE are back-end (memory) bound; Stemmer is
    // speculation bound (dense branching on word suffixes).
    static const MicroarchProfile gmm = {1.1, 0.33, 0.08, 0.04, 0.55};
    static const MicroarchProfile dnn = {2.3, 0.60, 0.08, 0.02, 0.30};
    static const MicroarchProfile stem = {0.9, 0.30, 0.15, 0.25, 0.30};
    static const MicroarchProfile regex = {2.1, 0.55, 0.10, 0.15, 0.20};
    static const MicroarchProfile crf = {1.3, 0.38, 0.10, 0.12, 0.40};
    static const MicroarchProfile fe = {1.5, 0.45, 0.08, 0.07, 0.40};
    static const MicroarchProfile fd = {1.8, 0.50, 0.06, 0.04, 0.40};
    static const MicroarchProfile hmm = {0.8, 0.30, 0.12, 0.18, 0.40};
    switch (kernel) {
      case Kernel::Gmm: return gmm;
      case Kernel::Dnn: return dnn;
      case Kernel::Stemmer: return stem;
      case Kernel::Regex: return regex;
      case Kernel::Crf: return crf;
      case Kernel::Fe: return fe;
      case Kernel::Fd: return fd;
      case Kernel::HmmSearch: return hmm;
      case Kernel::HmmSearchDnn: return hmm;
    }
    panic("microarchProfile: unknown kernel");
}

double
stallFreeSpeedup(Kernel kernel)
{
    return 1.0 / microarchProfile(kernel).retiring;
}

double
aggregateStallFreeSpeedup()
{
    // Weight kernels equally (the paper's bound is an eyeball aggregate
    // over the per-kernel bars).
    double total = 0.0;
    for (Kernel kernel : suiteKernels())
        total += stallFreeSpeedup(kernel);
    return total / static_cast<double>(suiteKernels().size());
}

} // namespace sirius::accel
