/**
 * @file
 * Accelerator platform descriptions: Table 3 (specifications) and
 * Table 6 (power and purchase cost) of the paper.
 *
 * Substitution note (see DESIGN.md): this container has no GPU, Xeon Phi
 * or FPGA, so accelerated execution is *modeled*. These specs are the
 * model's inputs; kernel speedups come from accel/model.h.
 */

#ifndef SIRIUS_ACCEL_PLATFORM_H
#define SIRIUS_ACCEL_PLATFORM_H

#include <cstddef>
#include <string>
#include <vector>

namespace sirius::accel {

/** The platforms studied by the paper. */
enum class Platform
{
    Cmp,          ///< Intel Xeon single-threaded baseline
    CmpMulticore, ///< pthreads on all 4 cores / 8 threads
    Gpu,          ///< NVIDIA GTX 770
    Phi,          ///< Intel Xeon Phi 5110P
    Fpga,         ///< Xilinx Virtex-6 ML605
};

/** All platforms, in presentation order. */
const std::vector<Platform> &allPlatforms();

/** Accelerator platforms only (excludes the two CPU rows). */
const std::vector<Platform> &acceleratorPlatforms();

/** Table 3 + Table 6 data for one platform. */
struct PlatformSpec
{
    const char *name;
    const char *model;
    double frequencyGhz;
    int cores;
    int hwThreads;
    double memGb;
    double memBwGBs;
    double peakTflops;
    double tdpWatts;      ///< Table 6
    double costUsd;       ///< Table 6
    bool offload;         ///< data must cross PCIe
    double simdReliance;  ///< 0 = scalar-friendly, 1 = SIMD-or-nothing
    double divergencePenalty; ///< throughput lost per unit divergence
    double modelEfficiency;   ///< analytic model: achievable share of
                              ///< peak on irregular server kernels
};

/** Spec for @p platform. */
const PlatformSpec &platformSpec(Platform platform);

/** Display name ("CMP", "GPU", ...). */
const char *platformName(Platform platform);

/** Baseline server used by the TCO analysis (Table 7, [44]). */
struct BaselineServer
{
    double priceUsd = 2102.0;
    double powerWatts = 163.6;
};

} // namespace sirius::accel

#endif // SIRIUS_ACCEL_PLATFORM_H
