#include "accel/platform.h"

#include "common/logging.h"

namespace sirius::accel {

const std::vector<Platform> &
allPlatforms()
{
    static const std::vector<Platform> platforms = {
        Platform::Cmp, Platform::CmpMulticore, Platform::Gpu,
        Platform::Phi, Platform::Fpga,
    };
    return platforms;
}

const std::vector<Platform> &
acceleratorPlatforms()
{
    static const std::vector<Platform> platforms = {
        Platform::Gpu, Platform::Phi, Platform::Fpga,
    };
    return platforms;
}

const PlatformSpec &
platformSpec(Platform platform)
{
    // Table 3 (specs) and Table 6 (TDP, cost). The two CMP rows share
    // the Xeon's hardware; they differ only in how many threads the
    // software uses.
    static const PlatformSpec cmp = {
        "CMP", "Intel Xeon E3-1240 V3", 3.40, 4, 8, 12.0, 25.6, 0.5,
        80.0, 250.0, false, 0.5, 0.05, 1.0,
    };
    static const PlatformSpec cmp_mt = {
        "CMP (multicore)", "Intel Xeon E3-1240 V3", 3.40, 4, 8, 12.0,
        25.6, 0.5, 80.0, 250.0, false, 0.5, 0.05, 1.0,
    };
    static const PlatformSpec gpu = {
        "GPU", "NVIDIA GTX 770", 1.05, 8, 12288, 2.0, 224.0, 3.2,
        230.0, 399.0, true, 1.0, 0.85, 0.10,
    };
    static const PlatformSpec phi = {
        "Phi", "Intel Xeon Phi 5110P", 1.05, 60, 240, 8.0, 320.0, 2.1,
        225.0, 2437.0, true, 0.9, 0.45, 0.012,
    };
    static const PlatformSpec fpga = {
        "FPGA", "Xilinx Virtex-6 ML605", 0.40, 0, 0, 0.5, 6.4, 0.5,
        22.0, 1795.0, false, 0.0, 0.0, 1.0,
    };
    switch (platform) {
      case Platform::Cmp: return cmp;
      case Platform::CmpMulticore: return cmp_mt;
      case Platform::Gpu: return gpu;
      case Platform::Phi: return phi;
      case Platform::Fpga: return fpga;
    }
    panic("platformSpec: unknown platform");
}

const char *
platformName(Platform platform)
{
    return platformSpec(platform).name;
}

} // namespace sirius::accel
