#include "accel/fpga_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sirius::accel {

FpgaGmmSimulator::FpgaGmmSimulator(int dims, int components,
                                   FpgaFabric fabric)
    : dims_(dims), components_(components), fabric_(fabric)
{
    if (dims <= 0 || components <= 0)
        fatal("FpgaGmmSimulator: dims and components must be positive");
}

int
FpgaGmmSimulator::coreLuts() const
{
    return dims_ * kLutsPerLogDiffUnit + kLutsCoreOverhead;
}

int
FpgaGmmSimulator::maxCores() const
{
    const double usable = fabric_.luts * fabric_.usableFraction;
    return std::max(1, static_cast<int>(usable / coreLuts()));
}

double
FpgaGmmSimulator::cyclesPerState() const
{
    // The dimension loop is one cycle wide (fully parallel log-diff
    // units); each component then flows through the pipelined
    // log-summation unit at initiation interval 1, after the fill.
    return kPipelineFill + components_;
}

double
FpgaGmmSimulator::statesPerSecond(int cores) const
{
    cores = std::clamp(cores, 1, maxCores());
    return fabric_.clockGhz * 1e9 / cyclesPerState() * cores;
}

double
FpgaGmmSimulator::speedupVsCpu(double cpu_states_per_second,
                               int cores) const
{
    if (cpu_states_per_second <= 0.0)
        fatal("FpgaGmmSimulator: CPU rate must be positive");
    return statesPerSecond(cores) / cpu_states_per_second;
}

FpgaStemmerSimulator::FpgaStemmerSimulator(FpgaFabric fabric)
    : fabric_(fabric)
{
}

int
FpgaStemmerSimulator::maxCores() const
{
    // Rounded: 5 cores x 17% occupy exactly the 85% usable fabric.
    return std::max(1, static_cast<int>(std::lround(
        fabric_.usableFraction / coreFabricFraction())));
}

double
FpgaStemmerSimulator::cyclesPerWord() const
{
    return kCyclesPerWordSteadyState;
}

double
FpgaStemmerSimulator::wordsPerSecond(int cores) const
{
    cores = std::clamp(cores, 1, maxCores());
    return fabric_.clockGhz * 1e9 / cyclesPerWord() * cores;
}

double
FpgaStemmerSimulator::speedupVsCpu(double cpu_words_per_second,
                                   int cores) const
{
    if (cpu_words_per_second <= 0.0)
        fatal("FpgaStemmerSimulator: CPU rate must be positive");
    return wordsPerSecond(cores) / cpu_words_per_second;
}

} // namespace sirius::accel
