#include "accel/latency.h"

#include "common/logging.h"

namespace sirius::accel {

const std::vector<ServiceKind> &
allServices()
{
    static const std::vector<ServiceKind> services = {
        ServiceKind::AsrGmm, ServiceKind::AsrDnn, ServiceKind::Qa,
        ServiceKind::Imm,
    };
    return services;
}

const char *
serviceKindName(ServiceKind kind)
{
    switch (kind) {
      case ServiceKind::AsrGmm: return "ASR (GMM)";
      case ServiceKind::AsrDnn: return "ASR (DNN)";
      case ServiceKind::Qa: return "QA";
      case ServiceKind::Imm: return "IMM";
    }
    return "?";
}

double
baselineLatency(const ServiceProfile &profile)
{
    double total = profile.unacceleratedSeconds;
    for (const auto &component : profile.components)
        total += component.seconds;
    return total;
}

double
serviceLatency(const ServiceProfile &profile, const SpeedupModel &model,
               Platform platform)
{
    double total = profile.unacceleratedSeconds;
    for (const auto &component : profile.components)
        total += component.seconds / model.speedup(component.kernel,
                                                   platform);
    return total;
}

double
perfPerWattVsMulticore(const ServiceProfile &profile,
                       const SpeedupModel &model, Platform platform)
{
    // Performance = 1/latency. Power: the accelerator card's TDP for
    // offload/fabric platforms (the paper compares device TDPs from
    // Table 6); the host CPU's TDP for the CMP rows.
    const double base_latency = serviceLatency(
        profile, model, Platform::CmpMulticore);
    const double base_watts = platformSpec(Platform::CmpMulticore)
        .tdpWatts;
    const double base_ppw = 1.0 / (base_latency * base_watts);

    const double latency = serviceLatency(profile, model, platform);
    const double watts = platformSpec(platform).tdpWatts;
    const double ppw = 1.0 / (latency * watts);
    return ppw / base_ppw;
}

double
throughputImprovement(const ServiceProfile &profile,
                      const SpeedupModel &model, Platform platform)
{
    // Baseline: 4 cores each serving one query at the serial latency.
    const double serial = serviceLatency(profile, model, Platform::Cmp);
    const double base_throughput =
        platformSpec(Platform::Cmp).cores / serial;
    const double throughput = 1.0 /
        serviceLatency(profile, model, platform);
    return throughput / base_throughput;
}

std::vector<ServiceProfile>
makeServiceProfiles(double asr_fe, double asr_gmm_scoring,
                    double asr_search, double asr_dnn_total,
                    double qa_stemmer, double qa_regex, double qa_crf,
                    double qa_rest, double imm_fe, double imm_fd,
                    double imm_rest)
{
    std::vector<ServiceProfile> profiles;

    ServiceProfile asr_gmm;
    asr_gmm.kind = ServiceKind::AsrGmm;
    asr_gmm.components = {{Kernel::Gmm, asr_gmm_scoring},
                          {Kernel::HmmSearch, asr_search}};
    asr_gmm.unacceleratedSeconds = asr_fe;
    profiles.push_back(asr_gmm);

    // RASR splits into DNN scoring (~70%) and framework-level HMM
    // search (~30%). The GPU/Phi Table 5 DNN numbers cover both (the
    // paper's footnote), which the HmmSearchDnn row encodes; the FPGA
    // accelerates scoring only, with the [35] search assumption.
    ServiceProfile asr_dnn;
    asr_dnn.kind = ServiceKind::AsrDnn;
    asr_dnn.components = {{Kernel::Dnn, 0.7 * asr_dnn_total},
                          {Kernel::HmmSearchDnn, 0.3 * asr_dnn_total}};
    asr_dnn.unacceleratedSeconds = asr_fe;
    profiles.push_back(asr_dnn);

    ServiceProfile qa;
    qa.kind = ServiceKind::Qa;
    qa.components = {{Kernel::Stemmer, qa_stemmer},
                     {Kernel::Regex, qa_regex},
                     {Kernel::Crf, qa_crf}};
    qa.unacceleratedSeconds = qa_rest;
    profiles.push_back(qa);

    ServiceProfile imm;
    imm.kind = ServiceKind::Imm;
    imm.components = {{Kernel::Fe, imm_fe}, {Kernel::Fd, imm_fd}};
    imm.unacceleratedSeconds = imm_rest;
    profiles.push_back(imm);

    return profiles;
}

std::vector<ServiceProfile>
defaultServiceProfiles()
{
    // Component shares follow the paper's Figure 9 cycle breakdown and
    // Figure 14 magnitudes: ASR(GMM) ~4.2 s dominated by scoring, QA's
    // NLP components ~88% of its time, IMM split between FE and FD.
    return makeServiceProfiles(
        /*asr_fe=*/0.01,
        /*asr_gmm_scoring=*/3.20, /*asr_search=*/0.95,
        /*asr_dnn_total=*/3.50,
        /*qa_stemmer=*/1.50, /*qa_regex=*/1.10, /*qa_crf=*/1.60,
        /*qa_rest=*/0.55,
        /*imm_fe=*/1.10, /*imm_fd=*/1.30, /*imm_rest=*/0.02);
}

} // namespace sirius::accel
