/**
 * @file
 * Service-level latency composition across platforms (Figures 14-16).
 *
 * A service profile records the measured single-threaded time of each hot
 * component (taken from the real pipeline on this machine) plus the
 * residual unaccelerated time. Platform latency divides each accelerated
 * component by its modeled speedup, mirroring how the paper composes
 * Figure 14 from Table 5.
 */

#ifndef SIRIUS_ACCEL_LATENCY_H
#define SIRIUS_ACCEL_LATENCY_H

#include <string>
#include <vector>

#include "accel/model.h"

namespace sirius::accel {

/** The four service configurations of Figures 14-19. */
enum class ServiceKind
{
    AsrGmm,
    AsrDnn,
    Qa,
    Imm,
};

/** All service kinds in presentation order. */
const std::vector<ServiceKind> &allServices();

/** Display name ("ASR (GMM)", ...). */
const char *serviceKindName(ServiceKind kind);

/** One hot component of a service. */
struct ComponentTime
{
    Kernel kernel;     ///< which Suite kernel accelerates it
    double seconds;    ///< measured 1-thread baseline time
};

/** Measured breakdown of one service's query latency. */
struct ServiceProfile
{
    ServiceKind kind;
    std::vector<ComponentTime> components;
    double unacceleratedSeconds = 0.0; ///< stays on the host CPU
};

/** Total baseline (1-thread CMP) latency of the profile. */
double baselineLatency(const ServiceProfile &profile);

/** Latency of the service on @p platform under @p model. */
double serviceLatency(const ServiceProfile &profile,
                      const SpeedupModel &model, Platform platform);

/**
 * Performance per watt relative to the all-cores CMP baseline
 * (Figure 15). Performance = 1/latency; power = accelerator TDP for
 * offload/fabric platforms, CPU TDP for the CMP rows.
 */
double perfPerWattVsMulticore(const ServiceProfile &profile,
                              const SpeedupModel &model,
                              Platform platform);

/**
 * Server throughput improvement at 100% load (Figure 16). The baseline
 * server runs one query per core (query-level parallelism on 4 cores);
 * an accelerated server streams queries through the accelerator.
 */
double throughputImprovement(const ServiceProfile &profile,
                             const SpeedupModel &model, Platform platform);

/**
 * Default service profiles with documented baseline component times
 * (seconds), measured from the end-to-end pipeline and scaled to the
 * paper's observed service magnitudes. Callers running the real pipeline
 * can substitute their own measurements.
 */
std::vector<ServiceProfile> defaultServiceProfiles();

/**
 * Build service profiles from measured component seconds.
 * @param asr_fe feature-extraction seconds (stays unaccelerated)
 * @param asr_gmm_scoring,asr_search GMM-backend scoring/search split
 * @param asr_dnn_total DNN-backend total (the paper's DNN row covers
 *        scoring + search together)
 * @param qa_stemmer,qa_regex,qa_crf,qa_rest QA component seconds
 * @param imm_fe,imm_fd,imm_rest IMM component seconds
 */
std::vector<ServiceProfile> makeServiceProfiles(
    double asr_fe, double asr_gmm_scoring, double asr_search,
    double asr_dnn_total, double qa_stemmer, double qa_regex,
    double qa_crf, double qa_rest, double imm_fe, double imm_fd,
    double imm_rest);

} // namespace sirius::accel

#endif // SIRIUS_ACCEL_LATENCY_H
