#include "accel/model.h"

#include <algorithm>
#include <cmath>

#include "accel/uarch.h"
#include "common/logging.h"

namespace sirius::accel {

const std::vector<Kernel> &
suiteKernels()
{
    static const std::vector<Kernel> kernels = {
        Kernel::Gmm, Kernel::Dnn, Kernel::Stemmer, Kernel::Regex,
        Kernel::Crf, Kernel::Fe, Kernel::Fd,
    };
    return kernels;
}

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::Gmm: return "GMM";
      case Kernel::Dnn: return "DNN";
      case Kernel::Stemmer: return "Stemmer";
      case Kernel::Regex: return "Regex";
      case Kernel::Crf: return "CRF";
      case Kernel::Fe: return "FE";
      case Kernel::Fd: return "FD";
      case Kernel::HmmSearch: return "HMM";
      case Kernel::HmmSearchDnn: return "HMM (RASR)";
    }
    return "?";
}

const KernelProfile &
kernelProfile(Kernel kernel)
{
    // Profiles characterize each kernel's parallel structure; values are
    // derived from the kernels' source structure (see src/suite) and the
    // paper's porting notes in Section 4.4.
    static const KernelProfile gmm = {
        0.999, 8.0, 0.95, 0.05, 0.95, 0.95};
    static const KernelProfile dnn = {
        0.995, 24.0, 0.98, 0.02, 0.60, 0.90};
    static const KernelProfile stemmer = {
        0.999, 0.6, 0.30, 0.90, 0.18, 0.80};
    static const KernelProfile regex = {
        0.999, 4.0, 0.95, 0.30, 0.95, 0.85};
    static const KernelProfile crf = {
        0.960, 2.0, 0.12, 0.55, 0.05, 0.80};
    static const KernelProfile fe = {
        0.950, 4.0, 0.40, 0.30, 0.22, 0.85};
    static const KernelProfile fd = {
        0.999, 8.0, 0.95, 0.10, 0.45, 0.90};
    static const KernelProfile hmm = {
        0.600, 1.0, 0.10, 0.80, 0.25, 0.80};
    static const KernelProfile hmm_dnn = {
        0.990, 4.0, 0.80, 0.30, 0.01, 0.90};
    switch (kernel) {
      case Kernel::Gmm: return gmm;
      case Kernel::Dnn: return dnn;
      case Kernel::Stemmer: return stemmer;
      case Kernel::Regex: return regex;
      case Kernel::Crf: return crf;
      case Kernel::Fe: return fe;
      case Kernel::Fd: return fd;
      case Kernel::HmmSearch: return hmm;
      case Kernel::HmmSearchDnn: return hmm_dnn;
    }
    panic("kernelProfile: unknown kernel");
}

double
CalibratedModel::speedup(Kernel kernel, Platform platform) const
{
    if (platform == Platform::Cmp)
        return 1.0;
    // Table 5 of the paper. CMP column is the 4-core pthreads port;
    // bracketed FPGA/GPU cells cite prior literature as the paper does.
    // The HMM row is the paper's stated assumption: a 3.7x accelerated
    // search from [35] used "as a reasonable lower bound" wherever a
    // custom kernel or literature value is used, and a 2.0x multicore
    // share for the CMP port.
    struct Row
    {
        double cmp, gpu, phi, fpga;
    };
    auto row = [kernel]() -> Row {
        switch (kernel) {
          case Kernel::Gmm: return {3.5, 70.0, 1.1, 169.0};
          case Kernel::Dnn: return {6.0, 54.7, 11.2, 110.5};
          case Kernel::Stemmer: return {4.0, 6.2, 5.6, 30.0};
          case Kernel::Regex: return {3.9, 48.0, 1.1, 168.2};
          case Kernel::Crf: return {3.7, 3.8, 4.7, 7.5};
          case Kernel::Fe: return {5.2, 10.5, 2.5, 34.6};
          case Kernel::Fd: return {5.9, 120.5, 12.7, 75.5};
          case Kernel::HmmSearch: return {2.0, 3.7, 2.0, 3.7};
          // RASR parallelizes search together with DNN scoring on the
          // GPU/Phi (Table 5 footnote); the FPGA only gets the [35]
          // search assumption.
          case Kernel::HmmSearchDnn: return {6.0, 54.7, 11.2, 3.7};
        }
        panic("CalibratedModel: unknown kernel");
    }();
    switch (platform) {
      case Platform::CmpMulticore: return row.cmp;
      case Platform::Gpu: return row.gpu;
      case Platform::Phi: return row.phi;
      case Platform::Fpga: return row.fpga;
      default: return 1.0;
    }
}

double
baselineSustainedGflops(Kernel kernel)
{
    // One Haswell core retiring scalar FP: frequency x 2 flops/cycle,
    // derated by the kernel's useful-work (retiring) cycle share from
    // the Figure-10 microarchitecture profile. This couples the
    // analytic model's baseline to the same data the paper's IPC study
    // uses.
    const double scalar_gflops =
        platformSpec(Platform::Cmp).frequencyGhz * 2.0;
    return scalar_gflops * microarchProfile(kernel).retiring;
}

double
AnalyticModel::sustained(Kernel kernel, const PlatformSpec &spec,
                         double parallel_threads) const
{
    const KernelProfile &profile = kernelProfile(kernel);
    (void)parallel_threads;

    if (spec.simdReliance == 0.0) {
        // FPGA: a custom pipeline at fabric frequency with a tailored
        // data layout; off-chip bandwidth is not the limiter (the paper
        // notes the fabric's "very efficient computation and data
        // layout"), so effectiveness is the fraction of the fabric the
        // kernel's datapath can fill.
        return spec.peakTflops * 1000.0 * profile.fpgaPipelineFactor;
    }
    // SIMD machines lose lanes to non-vectorizable work and throughput
    // to control divergence; modelEfficiency captures how much of the
    // remaining peak irregular server kernels achieve in practice.
    const double lanes = 1.0 -
        spec.simdReliance * (1.0 - profile.simdEfficiency);
    const double divergence_loss = std::max(
        0.02, 1.0 - spec.divergencePenalty * profile.divergence);
    const double compute =
        spec.peakTflops * 1000.0 * lanes * divergence_loss;
    // Roofline: device memory bandwidth caps sustained throughput.
    const double memory =
        spec.memBwGBs * profile.arithmeticIntensity;
    return std::min(compute, memory) * spec.modelEfficiency;
}

double
AnalyticModel::speedup(Kernel kernel, Platform platform) const
{
    if (platform == Platform::Cmp)
        return 1.0;
    const KernelProfile &profile = kernelProfile(kernel);
    const double base = baselineSustainedGflops(kernel);

    double raw;
    if (platform == Platform::CmpMulticore) {
        // The pthread port scales across 4 cores with a little SMT help.
        raw = 4.0 * 1.15;
    } else {
        const PlatformSpec &spec = platformSpec(platform);
        double accel = sustained(kernel, spec, 1.0);
        if (spec.offload)
            accel *= profile.offloadEfficiency;
        raw = std::max(1e-6, accel / std::max(1e-9, base));
    }

    // Amdahl over the kernel's parallel fraction.
    const double p = profile.parallelFraction;
    return 1.0 / ((1.0 - p) + p / raw);
}

ModelAgreement
compareModels(const SpeedupModel &a, const SpeedupModel &b)
{
    ModelAgreement result;
    std::vector<double> va, vb;
    for (Kernel kernel : suiteKernels()) {
        for (Platform platform : acceleratorPlatforms()) {
            va.push_back(a.speedup(kernel, platform));
            vb.push_back(b.speedup(kernel, platform));
        }
    }
    double err = 0.0;
    for (size_t i = 0; i < va.size(); ++i)
        err += std::fabs(std::log2(va[i] / vb[i]));
    result.meanAbsLogError = err / static_cast<double>(va.size());

    size_t agree = 0, total = 0;
    for (size_t i = 0; i < va.size(); ++i) {
        for (size_t j = i + 1; j < va.size(); ++j) {
            ++total;
            if ((va[i] < va[j]) == (vb[i] < vb[j]))
                ++agree;
        }
    }
    result.orderingAgreement = total == 0
        ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
    return result;
}

} // namespace sirius::accel
