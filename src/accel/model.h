/**
 * @file
 * Kernel speedup models across accelerator platforms.
 *
 * Two sources are provided:
 *  - CalibratedModel: the paper's measured speedups (Table 5), used as
 *    ground truth by every datacenter-level experiment. This is the
 *    documented substitution for the GPU/Phi/FPGA hardware this
 *    container does not have.
 *  - AnalyticModel: a roofline + Amdahl + divergence model computed from
 *    the platform specs (Table 3) and per-kernel workload profiles. It
 *    exists to sanity-check the calibrated numbers (ordering, rough
 *    magnitude); the ablation bench reports per-cell agreement.
 */

#ifndef SIRIUS_ACCEL_MODEL_H
#define SIRIUS_ACCEL_MODEL_H

#include <vector>

#include "accel/platform.h"

namespace sirius::accel {

/** The seven Sirius Suite kernels plus two HMM-search pseudo-kernels. */
enum class Kernel
{
    Gmm,
    Dnn,
    Stemmer,
    Regex,
    Crf,
    Fe,
    Fd,
    HmmSearch,    ///< Viterbi search; speedup assumption from [35]
    HmmSearchDnn, ///< RASR's framework-level search: ported with the DNN
                  ///< on GPU/Phi (Table 5 footnote), 3.7x-style on FPGA
};

/** Table 4 kernels in presentation order (excludes HmmSearch). */
const std::vector<Kernel> &suiteKernels();

/** Kernel display name. */
const char *kernelName(Kernel kernel);

/** Workload profile feeding the analytic model. */
struct KernelProfile
{
    double parallelFraction;     ///< Amdahl's parallelizable share
    double arithmeticIntensity;  ///< flops per byte moved
    double simdEfficiency;       ///< fraction of SIMD lanes usable
    double divergence;           ///< 0 = uniform control flow, 1 = chaotic
    double fpgaPipelineFactor;   ///< custom-datapath effectiveness [0, 1]
    double offloadEfficiency;    ///< survives PCIe transfer overheads
};

/**
 * The analytic model's baseline: sustained GFLOPS of the original
 * single-threaded implementation on one Haswell core, derived from the
 * core's scalar FLOP rate and the kernel's Figure-10 retiring fraction.
 */
double baselineSustainedGflops(Kernel kernel);

/** Profile for @p kernel. */
const KernelProfile &kernelProfile(Kernel kernel);

/** Interface: speedup of (kernel, platform) over the 1-thread CMP. */
class SpeedupModel
{
  public:
    virtual ~SpeedupModel() = default;

    /** Speedup factor >= 0 (1.0 = baseline speed). */
    virtual double speedup(Kernel kernel, Platform platform) const = 0;

    virtual const char *name() const = 0;
};

/** Table 5 numbers, verbatim. */
class CalibratedModel : public SpeedupModel
{
  public:
    double speedup(Kernel kernel, Platform platform) const override;
    const char *name() const override { return "calibrated"; }
};

/** Roofline/Amdahl/divergence model over the Table 3 specs. */
class AnalyticModel : public SpeedupModel
{
  public:
    double speedup(Kernel kernel, Platform platform) const override;
    const char *name() const override { return "analytic"; }

  private:
    /** Sustained TFLOPS of @p platform on @p kernel. */
    double sustained(Kernel kernel, const PlatformSpec &spec,
                     double parallel_threads) const;
};

/**
 * Agreement diagnostics between two models over the suite kernels and
 * accelerator platforms.
 */
struct ModelAgreement
{
    double meanAbsLogError = 0.0;  ///< mean |log2(a/b)| over cells
    double orderingAgreement = 0.0;///< pairwise-rank agreement in [0, 1]
};

/** Compare @p a against @p b over all (suite kernel, accelerator). */
ModelAgreement compareModels(const SpeedupModel &a, const SpeedupModel &b);

} // namespace sirius::accel

#endif // SIRIUS_ACCEL_MODEL_H
