/**
 * @file
 * Per-kernel microarchitectural profiles reproducing Figure 10.
 *
 * Substitution note (see DESIGN.md): the paper measures IPC and top-down
 * stall categories with Intel VTune; this container has no PMU access, so
 * the profiles are modeled constants consistent with the paper's
 * narrative (DNN and Regex run efficiently; removing every stall buys at
 * most ~3x on a general-purpose core). The figure's conclusion — the
 * scalability gap cannot be closed by better cores alone — is preserved
 * by construction and asserted in tests.
 */

#ifndef SIRIUS_ACCEL_UARCH_H
#define SIRIUS_ACCEL_UARCH_H

#include "accel/model.h"

namespace sirius::accel {

/** Top-down cycle accounting for one kernel on the Haswell baseline. */
struct MicroarchProfile
{
    double ipc;          ///< instructions per cycle
    double retiring;     ///< useful-work share of cycles
    double frontEnd;     ///< front-end stall share
    double speculation;  ///< bad-speculation share
    double backEnd;      ///< back-end (memory/exec) stall share
};

/** Profile for @p kernel. Shares sum to 1. */
const MicroarchProfile &microarchProfile(Kernel kernel);

/**
 * Speedup on a general-purpose core if every stall cycle were removed
 * (perfect branch prediction, infinite caches): 1 / retiring.
 */
double stallFreeSpeedup(Kernel kernel);

/**
 * Cycle-weighted maximum stall-free speedup across the suite kernels —
 * the paper's "bound by around 3x" observation.
 */
double aggregateStallFreeSpeedup();

} // namespace sirius::accel

#endif // SIRIUS_ACCEL_UARCH_H
