/**
 * @file
 * Structural simulators of the paper's custom FPGA designs
 * (Section 4.3.4, Figures 11 and 12).
 *
 * The paper builds two original FPGA implementations: a GMM scoring core
 * whose log-differential units fully parallelize the innermost
 * (dimension) loop while the middle (component) loop flows through a
 * pipelined log-summation unit, and a six-step pipelined Porter-stemmer
 * core with parallel vowel/suffix comparators. Both designs replicate
 * cores until the fabric is full (3 GMM cores: 56x -> 169x; stemmer at
 * 17% fabric per core: 6x -> 30x).
 *
 * We cannot place-and-route on this container, so these classes model
 * the *structure*: per-item cycle counts from the pipeline organization,
 * LUT budgets from the Virtex-6 fabric, and linear core scaling. Tests
 * assert the structural facts the paper reports (core counts and the
 * full-fabric/single-core ratios).
 */

#ifndef SIRIUS_ACCEL_FPGA_SIM_H
#define SIRIUS_ACCEL_FPGA_SIM_H

#include <cstddef>

namespace sirius::accel {

/** The Virtex-6 ML605 fabric the paper targets. */
struct FpgaFabric
{
    double clockGhz = 0.4;  ///< Table 3
    int luts = 150720;      ///< XC6VLX240T logic cells
    /** Routable fraction of the fabric a replicated design can fill. */
    double usableFraction = 0.85;
};

/**
 * The Figure 11 GMM core: one core scores one HMM state per pass; the
 * innermost dimension loop is fully parallel (one log-differential unit
 * per feature dimension), the component loop is sequential through the
 * pipelined log-summation unit.
 */
class FpgaGmmSimulator
{
  public:
    /**
     * @param dims feature dimensionality (log-diff units per core)
     * @param components Gaussians per state (sequential middle loop)
     */
    FpgaGmmSimulator(int dims, int components, FpgaFabric fabric = {});

    /** LUTs one core occupies. */
    int coreLuts() const;

    /** Cores that fit the usable fabric (>= 1). */
    int maxCores() const;

    /** Pipeline cycles to score one state on one core. */
    double cyclesPerState() const;

    /** Aggregate states scored per second with @p cores cores. */
    double statesPerSecond(int cores) const;

    /** Speedup over a CPU scoring @p cpu_states_per_second. */
    double speedupVsCpu(double cpu_states_per_second, int cores) const;

  private:
    int dims_;
    int components_;
    FpgaFabric fabric_;

    // Structure constants: a log-differential unit (subtract, square,
    // multiply-accumulate in log space) and the shared log-summation
    // tree + control per core.
    static constexpr int kLutsPerLogDiffUnit = 1000;
    static constexpr int kLutsCoreOverhead = 2400;
    static constexpr int kPipelineFill = 12;
};

/**
 * The Figure 12 stemmer core: six pipelined suffix-handling steps with
 * parallel vowel / vowel-consonant / suffix comparators selecting the
 * word shift per step.
 */
class FpgaStemmerSimulator
{
  public:
    explicit FpgaStemmerSimulator(FpgaFabric fabric = {});

    /** Fabric fraction one core occupies (paper: 17%). */
    double coreFabricFraction() const { return 0.17; }

    /** Cores that fit the usable fabric. */
    int maxCores() const;

    /** Cycles to stream one word through the six-step pipeline. */
    double cyclesPerWord() const;

    /** Aggregate words stemmed per second with @p cores cores. */
    double wordsPerSecond(int cores) const;

    /** Speedup over a CPU stemming @p cpu_words_per_second. */
    double speedupVsCpu(double cpu_words_per_second, int cores) const;

  private:
    FpgaFabric fabric_;

    // The char-serial datapath shifts the average word (~9 letters)
    // through the step logic; steps overlap once the pipe is full.
    static constexpr double kCyclesPerWordSteadyState = 14.0;
};

} // namespace sirius::accel

#endif // SIRIUS_ACCEL_FPGA_SIM_H
