/**
 * @file
 * Candidate answer extraction and score aggregation: the final stage of
 * the QA pipeline. The best-scoring candidate across all filtered
 * documents is returned as the answer (OpenEphyra's document-selector
 * role in Figure 6).
 */

#ifndef SIRIUS_QA_ANSWER_H
#define SIRIUS_QA_ANSWER_H

#include <string>
#include <vector>

#include "qa/question.h"
#include "search/corpus.h"

namespace sirius::qa {

/** A scored candidate answer span. */
struct AnswerCandidate
{
    std::string text;    ///< candidate span as it appeared
    double score = 0.0;  ///< aggregated evidence score
    size_t support = 0;  ///< number of supporting sentences
};

/** Extracts and aggregates candidate answers from retrieved documents. */
class AnswerExtractor
{
  public:
    /**
     * Extract candidates from @p docs (each paired with its retrieval
     * score) and aggregate scores across occurrences.
     * @return candidates sorted by descending score.
     */
    std::vector<AnswerCandidate>
    extract(const std::vector<std::pair<const search::Document *, double>>
                &docs,
            const QuestionAnalysis &analysis) const;

  private:
    /** Candidate spans of one sentence for a given answer type. */
    std::vector<std::string> candidateSpans(
        const std::string &sentence, const QuestionAnalysis &analysis)
        const;
};

} // namespace sirius::qa

#endif // SIRIUS_QA_ANSWER_H
