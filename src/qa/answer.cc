#include "qa/answer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "nlp/porter_stemmer.h"
#include "nlp/tokenizer.h"

namespace sirius::qa {

namespace {

bool
isCapitalized(const std::string &token)
{
    if (token.empty())
        return false;
    if (!std::isupper(static_cast<unsigned char>(token[0])))
        return false;
    for (size_t i = 1; i < token.size(); ++i) {
        if (!std::isalpha(static_cast<unsigned char>(token[i])))
            return false;
    }
    return true;
}

bool
isAllDigits(const std::string &token)
{
    if (token.empty())
        return false;
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

/** A candidate span plus its position for proximity scoring. */
struct Span
{
    std::string text;
    size_t tokenIndex;
};

} // namespace

std::vector<std::string>
AnswerExtractor::candidateSpans(const std::string &sentence,
                                const QuestionAnalysis &analysis) const
{
    // Kept for interface simplicity: positions recomputed in extract().
    std::vector<std::string> out;
    const auto tokens = nlp::tokenize(sentence, /*lower=*/false);
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (analysis.type == AnswerType::Time ||
            analysis.type == AnswerType::Number) {
            if (isAllDigits(tokens[i])) {
                std::string span = tokens[i];
                if (i + 1 < tokens.size() &&
                    (tokens[i + 1] == "Am" || tokens[i + 1] == "Pm")) {
                    span += " " + tokens[i + 1];
                }
                out.push_back(span);
            }
            continue;
        }
        if (!isCapitalized(tokens[i]))
            continue;
        if (QuestionAnalyzer::isStopword(toLower(tokens[i])))
            continue;
        std::string span = tokens[i];
        size_t j = i + 1;
        while (j < tokens.size() && isCapitalized(tokens[j]) &&
               !QuestionAnalyzer::isStopword(toLower(tokens[j]))) {
            span += " " + tokens[j];
            ++j;
        }
        out.push_back(span);
        i = j - 1;
    }
    return out;
}

std::vector<AnswerCandidate>
AnswerExtractor::extract(
    const std::vector<std::pair<const search::Document *, double>> &docs,
    const QuestionAnalysis &analysis) const
{
    nlp::PorterStemmer stemmer;
    // Aggregate by lower-cased candidate text.
    std::map<std::string, AnswerCandidate> aggregate;

    const size_t needed = std::max<size_t>(
        1, (analysis.focusStems.size() + 1) / 2);

    for (const auto &[doc, retrieval_score] : docs) {
        size_t start = 0;
        const std::string &text = doc->text;
        while (start < text.size()) {
            size_t end = text.find('.', start);
            if (end == std::string::npos)
                end = text.size();
            const std::string sentence = text.substr(start, end - start);
            start = end + 1;

            // Sentence evidence: focus-stem overlap.
            const auto raw_tokens = nlp::tokenize(sentence,
                                                  /*lower=*/false);
            std::vector<std::string> stems;
            stems.reserve(raw_tokens.size());
            for (const auto &tok : raw_tokens)
                stems.push_back(stemmer.stem(toLower(tok)));
            size_t overlap = 0;
            std::vector<size_t> focus_positions;
            for (const auto &focus : analysis.focusStems) {
                for (size_t j = 0; j < stems.size(); ++j) {
                    if (stems[j] == focus) {
                        ++overlap;
                        focus_positions.push_back(j);
                        break;
                    }
                }
            }
            if (overlap < needed)
                continue;

            // Candidate spans with their positions.
            std::vector<Span> spans;
            for (size_t i = 0; i < raw_tokens.size(); ++i) {
                if (analysis.type == AnswerType::Time ||
                    analysis.type == AnswerType::Number) {
                    if (isAllDigits(raw_tokens[i])) {
                        std::string span_text = raw_tokens[i];
                        if (i + 1 < raw_tokens.size() &&
                            (raw_tokens[i + 1] == "Am" ||
                             raw_tokens[i + 1] == "Pm")) {
                            span_text += " " + raw_tokens[i + 1];
                        }
                        spans.push_back(Span{span_text, i});
                    }
                    continue;
                }
                if (!isCapitalized(raw_tokens[i]) ||
                    QuestionAnalyzer::isStopword(
                        toLower(raw_tokens[i]))) {
                    continue;
                }
                std::string span_text = raw_tokens[i];
                size_t j = i + 1;
                while (j < raw_tokens.size() &&
                       isCapitalized(raw_tokens[j]) &&
                       !QuestionAnalyzer::isStopword(
                           toLower(raw_tokens[j]))) {
                    span_text += " " + raw_tokens[j];
                    ++j;
                }
                spans.push_back(Span{span_text, i});
                i = j - 1;
            }

            for (const auto &span : spans) {
                // Skip candidates wholly made of question terms.
                bool all_focus = true;
                for (const auto &word : split(toLower(span.text))) {
                    const std::string stem = stemmer.stem(word);
                    if (std::find(analysis.focusStems.begin(),
                                  analysis.focusStems.end(), stem) ==
                        analysis.focusStems.end()) {
                        all_focus = false;
                        break;
                    }
                }
                if (all_focus)
                    continue;

                // Proximity bonus: closeness to the nearest focus term.
                double proximity = 0.0;
                for (size_t pos : focus_positions) {
                    const double dist = std::fabs(
                        static_cast<double>(pos) -
                        static_cast<double>(span.tokenIndex));
                    proximity = std::max(proximity, 2.0 / (1.0 + dist));
                }

                const std::string key = toLower(span.text);
                auto &cand = aggregate[key];
                if (cand.text.empty())
                    cand.text = span.text;
                cand.score += static_cast<double>(overlap) + proximity +
                    0.25 * retrieval_score;
                cand.support += 1;
            }
        }
    }

    std::vector<AnswerCandidate> result;
    result.reserve(aggregate.size());
    for (auto &[key, cand] : aggregate)
        result.push_back(std::move(cand));
    std::sort(result.begin(), result.end(),
              [](const AnswerCandidate &a, const AnswerCandidate &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.text < b.text;
              });
    return result;
}

} // namespace sirius::qa
