#include "qa/qa_service.h"

#include <algorithm>

#include "common/timer.h"
#include "common/trace.h"

namespace sirius::qa {

QaService
QaService::build(QaConfig config)
{
    QaService service;
    service.config_ = config;
    service.webSearch_ = std::make_unique<search::WebSearch>(
        search::WebSearch::build(config.fillerDocs, config.seed));
    service.analyzer_ = std::make_unique<QuestionAnalyzer>(
        config.crfTrainSentences, config.seed);
    service.filters_ = makeStandardFilters(service.analyzer_->tagger());
    return service;
}

QaResult
QaService::answer(const std::string &question,
                  const Deadline &deadline) const
{
    QaResult result;

    // Question analysis uses all three NLP kernels; its time is split
    // into the stemmer/regex/CRF sinks the same way OpenEphyra's
    // profiles attribute them: typing is regex, tagging is CRF, and the
    // focus-stem normalization is stemmer work. Analysis cost is small
    // next to document filtering, so attributing the whole of analyze()
    // to regex (its dominant part) keeps the accounting simple without
    // skewing the breakdown.
    {
        Span span("question_analysis", SpanKind::Kernel);
        ScopedTimer timer(result.timings.regex);
        result.analysis = analyzer_->analyze(question);
    }

    std::vector<search::SearchHit> hits;
    if (deadline.expired()) {
        // Out of budget before retrieval: nothing to select from.
        result.cutShort = true;
        return result;
    }
    {
        Span span("document_search", SpanKind::Kernel);
        ScopedTimer timer(result.timings.search);
        hits = webSearch_->index().search(result.analysis.searchQuery,
                                          config_.retrievalDepth);
    }
    result.docsExamined = hits.size();

    // Document filters, timed into their component sinks.
    std::vector<std::pair<const search::Document *, double>> scored;
    scored.reserve(hits.size());
    for (const auto &hit : hits)
        scored.emplace_back(&webSearch_->index().document(hit.docId),
                            hit.score);

    std::vector<double> doc_quality(scored.size(), 0.0);
    for (const auto &filter : filters_) {
        double *sink = nullptr;
        const char *kernel = "filter";
        switch (filter->component()) {
          case NlpComponent::Stemmer:
            sink = &result.timings.stemmer;
            kernel = "stemmer_filter";
            break;
          case NlpComponent::Regex:
            sink = &result.timings.regex;
            kernel = "regex_filter";
            break;
          case NlpComponent::Crf:
            sink = &result.timings.crf;
            kernel = "crf_filter";
            break;
        }
        Span span(kernel, SpanKind::Kernel);
        ScopedTimer timer(*sink);
        for (size_t d = 0; d < scored.size(); ++d) {
            // Filtering dominates QA cost (Figure 8), so the budget is
            // checked per document: on expiry, selection proceeds over
            // whatever evidence has accumulated so far.
            if (deadline.bounded() && deadline.expired()) {
                result.cutShort = true;
                break;
            }
            const FilterOutcome outcome =
                filter->apply(*scored[d].first, result.analysis);
            result.filterHits += outcome.hits;
            doc_quality[d] += outcome.score;
        }
        if (result.cutShort)
            break;
    }

    // Fold filter quality into the retrieval score, then extract.
    {
        Span span("answer_select", SpanKind::Kernel);
        ScopedTimer timer(result.timings.select);
        for (size_t d = 0; d < scored.size(); ++d)
            scored[d].second += doc_quality[d];
        std::sort(scored.begin(), scored.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        const auto candidates = extractor_.extract(scored,
                                                   result.analysis);
        if (!candidates.empty()) {
            result.answer = candidates.front().text;
            result.confidence = candidates.front().score;
        }
    }
    return result;
}

} // namespace sirius::qa
