#include "qa/question.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"
#include "nlp/pos_corpus.h"
#include "nlp/tokenizer.h"

namespace sirius::qa {

const char *
answerTypeName(AnswerType type)
{
    switch (type) {
      case AnswerType::Person: return "person";
      case AnswerType::Location: return "location";
      case AnswerType::Time: return "time";
      case AnswerType::Number: return "number";
      case AnswerType::Entity: return "entity";
      case AnswerType::Other: return "other";
    }
    return "?";
}

QuestionAnalyzer::QuestionAnalyzer(size_t crf_train_sentences,
                                   uint64_t seed)
    : patterns_(nlp::questionAnalysisPatterns())
{
    tagger_ = std::make_unique<nlp::CrfTagger>(size_t{1} << 16);
    const auto corpus = nlp::generatePosCorpus(crf_train_sentences, seed);
    nlp::CrfTagger::TrainOptions opts;
    opts.epochs = 5;
    opts.shuffleSeed = seed;
    tagger_->train(corpus, opts);
}

bool
QuestionAnalyzer::isStopword(const std::string &word)
{
    static const std::set<std::string> stopwords = {
        "a",    "an",   "and",  "are",  "at",    "be",    "by",   "did",
        "do",   "does", "for",  "from", "how",   "in",    "is",   "it",
        "its",  "of",   "on",   "or",   "that",  "the",   "this", "to",
        "was",  "were", "what", "when", "where", "which", "who",  "whom",
        "whose", "with", "current", "many", "much",
    };
    return stopwords.count(word) > 0;
}

QuestionAnalysis
QuestionAnalyzer::analyze(const std::string &question) const
{
    QuestionAnalysis analysis;
    const std::string lower = toLower(question);
    analysis.tokens = nlp::tokenize(lower);

    // Regex stage: classify the question form and count pattern hits.
    for (const auto &pattern : patterns_) {
        if (pattern.search(lower))
            ++analysis.regexHits;
    }
    if (!analysis.tokens.empty()) {
        const std::string &head = analysis.tokens.front();
        if (head == "who" || head == "whom" || head == "whose")
            analysis.type = AnswerType::Person;
        else if (head == "where")
            analysis.type = AnswerType::Location;
        else if (head == "when")
            analysis.type = AnswerType::Time;
        else if (head == "how")
            analysis.type = AnswerType::Number;
        else if (head == "what" || head == "which")
            analysis.type = AnswerType::Entity;
    }

    // CRF stage: part-of-speech tags guide focus-word selection.
    analysis.posTags = tagger_->tag(analysis.tokens);

    // Stemmer stage: normalize focus words. The stemmer's word buffer
    // is mutable state, so it is per-call rather than a shared member —
    // analyze() must stay safe for concurrent server workers.
    nlp::PorterStemmer stemmer;
    for (size_t i = 0; i < analysis.tokens.size(); ++i) {
        const std::string &tok = analysis.tokens[i];
        if (isStopword(tok))
            continue;
        // Every non-stopword word token is a focus word. Out-of-
        // vocabulary words (proper nouns such as "italy") must survive
        // even when the tagger is unsure about them, so the veto here is
        // lexical rather than tag-based; the POS tags still drive the
        // POS-based document filter downstream.
        const bool has_alnum = std::any_of(
            tok.begin(), tok.end(), [](char c) {
                return std::isalnum(static_cast<unsigned char>(c));
            });
        if (!has_alnum)
            continue;
        analysis.focusWords.push_back(tok);
        analysis.focusStems.push_back(stemmer.stem(tok));
    }

    analysis.searchQuery = join(analysis.focusWords);
    return analysis;
}

} // namespace sirius::qa
