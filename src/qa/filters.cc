#include "qa/filters.h"

#include <algorithm>

#include "nlp/porter_stemmer.h"
#include "nlp/tokenizer.h"

namespace sirius::qa {

FilterOutcome
KeywordOverlapFilter::apply(const search::Document &doc,
                            const QuestionAnalysis &analysis) const
{
    FilterOutcome outcome;
    nlp::PorterStemmer stemmer;
    // Sentence-by-sentence stem overlap.
    size_t start = 0;
    const std::string &text = doc.text;
    while (start < text.size()) {
        size_t end = text.find('.', start);
        if (end == std::string::npos)
            end = text.size();
        auto tokens = nlp::tokenize(text.substr(start, end - start));
        stemmer.stemAll(tokens);
        size_t overlap = 0;
        for (const auto &stem : analysis.focusStems) {
            if (std::find(tokens.begin(), tokens.end(), stem) !=
                tokens.end()) {
                ++overlap;
            }
        }
        if (overlap > 0) {
            outcome.hits += overlap;
            outcome.score += static_cast<double>(overlap * overlap);
        }
        start = end + 1;
    }
    return outcome;
}

AnswerTypeRegexFilter::AnswerTypeRegexFilter()
{
    // Indexed by AnswerType enumerator order.
    patterns_.emplace_back("[A-Z][a-z]+(\\s[A-Z][a-z]+)+");  // Person
    patterns_.emplace_back("[A-Z][a-z]+");                   // Location
    patterns_.emplace_back("\\d+\\s?(Am|Pm)|\\d\\d\\d\\d");  // Time
    patterns_.emplace_back("\\d+");                          // Number
    patterns_.emplace_back("[A-Z][a-z]+");                   // Entity
    patterns_.emplace_back("\\w+");                          // Other
}

const nlp::Regex &
AnswerTypeRegexFilter::patternFor(AnswerType type) const
{
    return patterns_[static_cast<size_t>(type)];
}

FilterOutcome
AnswerTypeRegexFilter::apply(const search::Document &doc,
                             const QuestionAnalysis &analysis) const
{
    FilterOutcome outcome;
    const nlp::Regex &pattern = patternFor(analysis.type);
    outcome.hits = pattern.countMatches(doc.text);
    // Documents that contain answer-shaped spans at all are preferred,
    // with diminishing returns.
    outcome.score = outcome.hits > 0
        ? 1.0 + std::min<double>(3.0, static_cast<double>(outcome.hits) /
                                      8.0)
        : 0.0;
    return outcome;
}

FilterOutcome
PosCandidateFilter::apply(const search::Document &doc,
                          const QuestionAnalysis &analysis) const
{
    FilterOutcome outcome;
    size_t start = 0;
    const std::string &text = doc.text;
    while (start < text.size()) {
        size_t end = text.find('.', start);
        if (end == std::string::npos)
            end = text.size();
        const auto tokens = nlp::tokenize(text.substr(start, end - start),
                                          /*lower=*/false);
        if (!tokens.empty()) {
            const auto tags = tagger_.tag(tokens);
            // Candidate tags compatible with the expected answer type.
            for (size_t i = 0; i < tokens.size(); ++i) {
                const bool candidate =
                    (analysis.type == AnswerType::Number ||
                     analysis.type == AnswerType::Time)
                        ? tags[i] == nlp::PosTag::Num
                        : tags[i] == nlp::PosTag::Noun ||
                          tags[i] == nlp::PosTag::Other;
                if (candidate)
                    ++outcome.hits;
            }
        }
        start = end + 1;
    }
    outcome.score = std::min<double>(2.0,
        static_cast<double>(outcome.hits) / 20.0);
    return outcome;
}

FilterOutcome
ProximityFilter::apply(const search::Document &doc,
                       const QuestionAnalysis &analysis) const
{
    FilterOutcome outcome;
    nlp::PorterStemmer stemmer;
    auto tokens = nlp::tokenize(doc.text);
    stemmer.stemAll(tokens);
    constexpr size_t window = 8;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        size_t found = 0;
        const size_t end = std::min(tokens.size(), i + window);
        for (const auto &stem : analysis.focusStems) {
            for (size_t j = i; j < end; ++j) {
                if (tokens[j] == stem) {
                    ++found;
                    break;
                }
            }
        }
        if (found >= 2) {
            ++outcome.hits;
            outcome.score += 0.05;
        }
    }
    return outcome;
}

std::vector<std::unique_ptr<DocumentFilter>>
makeStandardFilters(const nlp::CrfTagger &tagger)
{
    std::vector<std::unique_ptr<DocumentFilter>> filters;
    filters.push_back(std::make_unique<KeywordOverlapFilter>());
    filters.push_back(std::make_unique<AnswerTypeRegexFilter>());
    filters.push_back(std::make_unique<PosCandidateFilter>(tagger));
    filters.push_back(std::make_unique<ProximityFilter>());
    return filters;
}

} // namespace sirius::qa
