/**
 * @file
 * Document filters: the second stage of the QA pipeline.
 *
 * OpenEphyra reranks retrieved documents with a suite of filters built on
 * the same NLP techniques as question analysis; the paper identifies the
 * runtime variability of these filters as the dominant source of QA
 * latency variance (Figure 8c correlates latency with filter hits). Every
 * filter here reports its hit count for exactly that experiment.
 */

#ifndef SIRIUS_QA_FILTERS_H
#define SIRIUS_QA_FILTERS_H

#include <memory>
#include <string>
#include <vector>

#include "qa/question.h"
#include "search/corpus.h"

namespace sirius::qa {

/** Which NLP kernel a filter's time is attributed to (Figure 9). */
enum class NlpComponent { Stemmer, Regex, Crf };

/** Result of one filter over one document. */
struct FilterOutcome
{
    size_t hits = 0;    ///< pattern/keyword/candidate hits found
    double score = 0.0; ///< contribution to the document's quality
};

/** Interface for document filters. */
class DocumentFilter
{
  public:
    virtual ~DocumentFilter() = default;

    /** Apply to one document under a given question analysis. */
    virtual FilterOutcome apply(const search::Document &doc,
                                const QuestionAnalysis &analysis) const = 0;

    /** Stable name for reports. */
    virtual const char *name() const = 0;

    /** Kernel attribution for the cycle-breakdown experiment. */
    virtual NlpComponent component() const = 0;
};

/**
 * Stems every document token and scores per-sentence overlap with the
 * question's focus stems. Attribution: Stemmer.
 */
class KeywordOverlapFilter : public DocumentFilter
{
  public:
    FilterOutcome apply(const search::Document &doc,
                        const QuestionAnalysis &analysis) const override;
    const char *name() const override { return "keyword-overlap"; }
    NlpComponent component() const override
    {
        return NlpComponent::Stemmer;
    }
};

/**
 * Runs the answer-type regular expressions over the document text and
 * counts matches. Attribution: Regex.
 */
class AnswerTypeRegexFilter : public DocumentFilter
{
  public:
    AnswerTypeRegexFilter();

    FilterOutcome apply(const search::Document &doc,
                        const QuestionAnalysis &analysis) const override;
    const char *name() const override { return "answer-type-regex"; }
    NlpComponent component() const override { return NlpComponent::Regex; }

    /** The pattern used for @p type (exposed to the answer extractor). */
    const nlp::Regex &patternFor(AnswerType type) const;

  private:
    std::vector<nlp::Regex> patterns_; ///< indexed by AnswerType
};

/**
 * CRF-tags document sentences and counts candidate tokens whose tag is
 * compatible with the expected answer type near focus words.
 * Attribution: Crf.
 */
class PosCandidateFilter : public DocumentFilter
{
  public:
    /** @param tagger trained tagger shared with question analysis. */
    explicit PosCandidateFilter(const nlp::CrfTagger &tagger)
        : tagger_(tagger) {}

    FilterOutcome apply(const search::Document &doc,
                        const QuestionAnalysis &analysis) const override;
    const char *name() const override { return "pos-candidate"; }
    NlpComponent component() const override { return NlpComponent::Crf; }

  private:
    const nlp::CrfTagger &tagger_;
};

/**
 * Counts sliding windows containing at least two focus stems (answer
 * evidence proximity). Attribution: Stemmer (stem-domain matching).
 */
class ProximityFilter : public DocumentFilter
{
  public:
    FilterOutcome apply(const search::Document &doc,
                        const QuestionAnalysis &analysis) const override;
    const char *name() const override { return "proximity"; }
    NlpComponent component() const override
    {
        return NlpComponent::Stemmer;
    }
};

/** The standard filter suite wired to a shared tagger. */
std::vector<std::unique_ptr<DocumentFilter>>
makeStandardFilters(const nlp::CrfTagger &tagger);

} // namespace sirius::qa

#endif // SIRIUS_QA_FILTERS_H
