/**
 * @file
 * The Question-Answering service: OpenEphyra's Figure-6 pipeline end to
 * end — question analysis, web-search retrieval, document filtering, and
 * answer selection — with per-NLP-component timing for the paper's
 * cycle-breakdown and variability experiments.
 */

#ifndef SIRIUS_QA_QA_SERVICE_H
#define SIRIUS_QA_QA_SERVICE_H

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "qa/answer.h"
#include "qa/filters.h"
#include "qa/question.h"
#include "search/web_search.h"

namespace sirius::qa {

/** Per-component wall time of one answered question, in seconds. */
struct QaTimings
{
    double stemmer = 0.0;
    double regex = 0.0;
    double crf = 0.0;
    double search = 0.0;   ///< BM25 retrieval
    double select = 0.0;   ///< answer extraction & aggregation

    double
    total() const
    {
        return stemmer + regex + crf + search + select;
    }
};

/** Result of answering one question. */
struct QaResult
{
    std::string answer;            ///< best candidate ("" if none)
    double confidence = 0.0;       ///< winner's aggregated score
    size_t filterHits = 0;         ///< total hits across all filters
    size_t docsExamined = 0;
    /**
     * True when the deadline expired mid-answer: retrieval or filtering
     * stopped early and the answer (possibly empty) was selected from
     * whatever evidence had been scored by then.
     */
    bool cutShort = false;
    QaTimings timings;
    QuestionAnalysis analysis;
};

/** QA service configuration. */
struct QaConfig
{
    size_t retrievalDepth = 8;    ///< documents pulled per query
    size_t fillerDocs = 220;      ///< corpus size knob
    size_t crfTrainSentences = 400;
    uint64_t seed = 31;
};

/** Trained, corpus-backed QA service. */
class QaService
{
  public:
    /** Build the corpus, index, filters and CRF tagger. */
    static QaService build(QaConfig config = {});

    /**
     * Answer a natural-language question. A bounded @p deadline cuts
     * the work short cooperatively: the budget is checked after
     * question analysis and between document-filter applications, and
     * on expiry the answer is selected from the documents scored so far
     * (`cutShort`) — lower quality, but inside the latency target.
     */
    QaResult answer(const std::string &question,
                    const Deadline &deadline = {}) const;

    const search::InvertedIndex &index() const
    {
        return webSearch_->index();
    }

    const QuestionAnalyzer &analyzer() const { return *analyzer_; }
    const QaConfig &config() const { return config_; }

  private:
    QaService() = default;

    QaConfig config_;
    std::unique_ptr<search::WebSearch> webSearch_;
    std::unique_ptr<QuestionAnalyzer> analyzer_;
    std::vector<std::unique_ptr<DocumentFilter>> filters_;
    AnswerExtractor extractor_;
};

} // namespace sirius::qa

#endif // SIRIUS_QA_QA_SERVICE_H
