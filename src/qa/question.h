/**
 * @file
 * Question analysis: the first stage of the OpenEphyra-style QA pipeline.
 *
 * Combines the three NLP components the paper identifies as QA's compute
 * bottlenecks: regular-expression pattern matching (question typing and
 * token filtering), Porter stemming (normalization) and CRF part-of-speech
 * tagging (focus-word selection).
 */

#ifndef SIRIUS_QA_QUESTION_H
#define SIRIUS_QA_QUESTION_H

#include <memory>
#include <string>
#include <vector>

#include "nlp/crf.h"
#include "nlp/porter_stemmer.h"
#include "nlp/regex.h"

namespace sirius::qa {

/** Expected answer category derived from the question form. */
enum class AnswerType
{
    Person,    ///< who ...
    Location,  ///< where ...
    Time,      ///< when ...
    Number,    ///< how many / how much ...
    Entity,    ///< what / which ...
    Other,
};

/** Human-readable answer-type name. */
const char *answerTypeName(AnswerType type);

/** Structured view of one question. */
struct QuestionAnalysis
{
    AnswerType type = AnswerType::Other;
    std::vector<std::string> tokens;
    std::vector<nlp::PosTag> posTags;
    std::vector<std::string> focusWords;  ///< content words
    std::vector<std::string> focusStems;  ///< stemmed focus words
    std::string searchQuery;              ///< generated retrieval query
    size_t regexHits = 0;                 ///< analysis patterns that fired
};

/** Performs question analysis; construction trains the CRF tagger. */
class QuestionAnalyzer
{
  public:
    /**
     * @param crf_train_sentences size of the synthetic POS corpus used to
     *        train the tagger
     * @param seed corpus / training determinism seed
     */
    explicit QuestionAnalyzer(size_t crf_train_sentences = 400,
                              uint64_t seed = 77);

    /**
     * Analyze one question (lower-case text from the ASR). Thread-safe:
     * concurrent server workers share one analyzer.
     */
    QuestionAnalysis analyze(const std::string &question) const;

    /** The trained tagger (shared with the document filters). */
    const nlp::CrfTagger &tagger() const { return *tagger_; }

    /** The compiled analysis pattern set. */
    const std::vector<nlp::Regex> &patterns() const { return patterns_; }

    /** True if @p word is a stopword. */
    static bool isStopword(const std::string &word);

  private:
    std::unique_ptr<nlp::CrfTagger> tagger_;
    std::vector<nlp::Regex> patterns_;
};

} // namespace sirius::qa

#endif // SIRIUS_QA_QUESTION_H
